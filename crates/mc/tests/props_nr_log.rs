//! Model-checked `completedTail` coverage for the NR operation log
//! (PREP-UC §4.1): whenever any thread observes `completedTail == c`,
//! every log entry below `c` is published and its payload is visible.
//!
//! Drives the log op-by-op through the `mc_*` seam under the exhaustive
//! scheduler: each thread reserves an entry, writes and publishes it,
//! waits until everything at or below its own index is full, and only
//! then proposes advancing `completedTail` past itself (the CAS-max in
//! `advance_completed_tail` resolves concurrent proposals).
#![cfg(prep_mc)]

use std::sync::Arc;

use prep_mc::{thread, Builder};
use prep_nr::Log;

fn reserve_write_publish(log: &Log<u64>, op: u64) -> u64 {
    loop {
        let t = log.log_tail();
        if log.mc_try_reserve(t, 1) {
            // SAFETY: the successful CAS gives this thread exclusive
            // ownership of index `t`, written and published exactly once.
            unsafe {
                log.mc_write_payload(t, op);
                log.mc_publish(t);
            }
            return t;
        }
        thread::yield_now();
    }
}

fn advance_past(log: &Log<u64>, idx: u64) {
    for j in 0..=idx {
        while !log.is_full(j) {
            thread::yield_now();
        }
    }
    log.mc_advance_completed_tail(idx + 1);
}

/// Coverage invariant: `completedTail == c` implies `is_full(j)` for all
/// `j < c`, through the full Release (publish) → Acquire (is_full) →
/// AcqRel (CAS-max advance) → Acquire (completed_tail) chain.
#[test]
fn completed_tail_covers_only_published_entries() {
    Builder::new("nr-completed-tail").check(|| {
        let log = Arc::new(Log::<u64>::new(4));
        let l2 = Arc::clone(&log);
        let t = thread::spawn(move || {
            let idx = reserve_write_publish(&l2, 100);
            advance_past(&l2, idx);
        });
        let idx = reserve_write_publish(&log, 200);
        advance_past(&log, idx);

        // The other thread may or may not have advanced yet; whatever
        // completedTail we observe must be fully covered.
        let c = log.completed_tail();
        assert!(c >= idx + 1, "own advance not reflected: ct={c}, idx={idx}");
        for j in 0..c {
            assert!(
                log.is_full(j),
                "completedTail {c} covers unpublished entry {j}"
            );
        }
        t.join().unwrap();

        assert_eq!(log.log_tail(), 2, "both reservations must land");
        assert_eq!(log.completed_tail(), 2, "CAS-max must settle at 2");
        assert!(log.is_full(0) && log.is_full(1));
    });
}

/// `try_reserve` is linearizable: two threads fighting over the tail get
/// disjoint indexes and the tail counts every success exactly once.
#[test]
fn reservations_never_collide() {
    Builder::new("nr-reserve").check(|| {
        let log = Arc::new(Log::<u64>::new(4));
        let l2 = Arc::clone(&log);
        let t = thread::spawn(move || reserve_write_publish(&l2, 7));
        let mine = reserve_write_publish(&log, 9);
        let theirs = t.join().unwrap();
        assert_ne!(mine, theirs, "two reservations own the same entry");
        assert_eq!(mine.max(theirs), 1);
        assert_eq!(mine.min(theirs), 0);
    });
}
