//! Model-checked properties of the real [`prep_sync::SeqVersion`].
//!
//! Runs only under `RUSTFLAGS="--cfg prep_mc"`: prep-sync must be built
//! with its `cell` seam routed through the instrumented runtime, or the
//! primitives' atomics would be invisible to the scheduler.
#![cfg(prep_mc)]

use std::sync::Arc;

use prep_mc::{thread, Builder};
use prep_sync::cell::PeekCell;
use prep_sync::SeqVersion;

/// The seqlock recipe end to end against the real `SeqVersion`, with a
/// value-correlated pair: the writer publishes `(n, n)` under bracket
/// `2(n-1) → 2n`, so a validated reader must see the exact pair matching
/// its snapshot — anything else is a torn read (pair mismatch) or a stale
/// read (pair older than the snapshot's version).
#[test]
fn validated_reads_are_neither_torn_nor_stale() {
    Builder::new("seq-version-correlated").check(|| {
        let sv = Arc::new(SeqVersion::new());
        let a = Arc::new(PeekCell::new(0u64));
        let b = Arc::new(PeekCell::new(0u64));
        let (sv2, a2, b2) = (Arc::clone(&sv), Arc::clone(&a), Arc::clone(&b));
        let writer = thread::spawn(move || {
            sv2.write_begin();
            unsafe {
                a2.write(1);
                b2.write(1);
            }
            sv2.write_end();
        });
        if let Some(snap) = sv.read_begin() {
            let x = unsafe { a.read_racy() }.value;
            let y = unsafe { b.read_racy() }.value;
            if sv.validate(snap) {
                assert_eq!(x, y, "torn read admitted by SeqVersion");
                assert_eq!(
                    x,
                    snap / 2,
                    "stale read: snapshot {snap} must carry pair ({}, {})",
                    snap / 2,
                    snap / 2
                );
            }
        }
        writer.join().unwrap();
    });
}

/// `read_begin` refuses to hand out a snapshot while a write bracket is
/// open (odd version).
#[test]
fn read_begin_refuses_open_write_brackets() {
    Builder::new("seq-version-odd").check(|| {
        let sv = Arc::new(SeqVersion::new());
        let sv2 = Arc::clone(&sv);
        let writer = thread::spawn(move || {
            sv2.write_begin();
            sv2.write_end();
        });
        if let Some(snap) = sv.read_begin() {
            assert_eq!(snap % 2, 0, "read_begin returned an odd snapshot");
        }
        writer.join().unwrap();
    });
}

/// PR 7's write-free-window skip (uc.rs `FairnessMode::Throughput`):
/// a reader gates its optimistic attempt on `current()` matching the
/// version its last locked read recorded. The gate is advisory (Relaxed)
/// — the property is that even when the stale gate lets an attempt
/// through mid-write, the `read_begin`/`validate` bracket still rejects
/// every inconsistent view.
#[test]
fn write_free_window_skip_is_safe() {
    Builder::new("write-free-window").check(|| {
        let sv = Arc::new(SeqVersion::new());
        let d = Arc::new(PeekCell::new(0u64));
        let (sv2, d2) = (Arc::clone(&sv), Arc::clone(&d));
        let writer = thread::spawn(move || {
            sv2.write_begin();
            unsafe { d2.write(7) };
            sv2.write_end();
        });
        // "Locked read": record the version observed with the data.
        let last_version = sv.current();
        // Later read: the write-free-window gate.
        if sv.current() == last_version {
            // Gate passed — optimistic attempt, still fully bracketed.
            if let Some(snap) = sv.read_begin() {
                let v = unsafe { d.read_racy() }.value;
                if sv.validate(snap) {
                    assert_eq!(
                        v,
                        snap / 2 * 7,
                        "validated optimistic read saw data inconsistent with its snapshot"
                    );
                }
            }
        }
        writer.join().unwrap();
    });
}

/// Advisory counters (`current`, `writes`) never tear and never run
/// backwards from one thread's perspective.
#[test]
fn version_counter_is_monotonic_per_observer() {
    Builder::new("seq-version-monotone").check(|| {
        let sv = Arc::new(SeqVersion::new());
        let sv2 = Arc::clone(&sv);
        let writer = thread::spawn(move || {
            sv2.write_begin();
            sv2.write_end();
            sv2.write_begin();
            sv2.write_end();
        });
        let v1 = sv.current();
        let v2 = sv.current();
        assert!(v2 >= v1, "version ran backwards: {v1} then {v2}");
        assert!(v2 <= 4, "version overshot two brackets: {v2}");
        writer.join().unwrap();
    });
}
