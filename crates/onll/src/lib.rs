//! An ONLL-style persistent universal construction.
//!
//! ONLL — *Order Now, Linearize Later* (Cohen, Guerraoui & Zablotchi,
//! SPAA 2018) — is the other PUC the PREP-UC paper discusses (§2.3). Its
//! essential design points, reproduced here:
//!
//! * a **volatile** shared structure fixes the linearization order of
//!   update operations ("the global queue represents the state of the
//!   underlying object in the form of the linearization order of all
//!   update operations that have ever been applied");
//! * each thread owns a **persistent log**; before an update completes, the
//!   thread appends `(linearization index, operation)` to its own log and
//!   persists it — one line flush + one fence per update, with no
//!   cross-thread persistence contention (durable linearizability);
//! * **read-only operations perform no flush or fence** — ONLL's signature
//!   property;
//! * recovery **merges the per-thread logs by linearization index and
//!   replays the entire history** onto a fresh object.
//!
//! That last point is exactly what PREP-UC's introduction pushes against:
//! without a checkpoint, the log grows without bound and recovery time is
//! proportional to the object's *lifetime*, not its size (§4.1: "unless we
//! allow for an infinite log — and, correspondingly, accept that we will
//! need to invoke unboundedly many operations to recover after a crash — it
//! is not sufficient to persist only the log"). The integration benches
//! measure that trade-off directly: ONLL's per-op persistence is cheaper
//! than PREP-Durable's, and its recovery is asymptotically worse.
//!
//! Scope note (as with `prep-cx`, documented in DESIGN.md): the original is
//! lock-free; this reimplementation serializes application through a lock
//! while preserving ONLL's persistence schedule (what is flushed, when, by
//! whom), which is what the comparison measures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex};

use prep_pmem::{CrashToken, LogImage, PmemRuntime};
use prep_seqds::SequentialObject;

/// An ONLL-style durable linearizable universal construction.
pub struct OnllUc<T: SequentialObject> {
    rt: Arc<PmemRuntime>,
    /// The volatile object plus the linearization counter, updated together.
    inner: Mutex<Inner<T>>,
    /// Per-thread persistent logs (crash-store images). Indexed by the
    /// thread id passed to [`OnllUc::execute`].
    plogs: Box<[LogImage<T::Op>]>,
}

struct Inner<T> {
    ds: T,
    /// Number of updates linearized so far (the next linearization index).
    order: u64,
}

impl<T: SequentialObject> OnllUc<T> {
    /// Builds the construction for up to `threads` worker threads over
    /// `obj`.
    ///
    /// Note: unlike PREP, the initial object state is **not** checkpointed —
    /// ONLL's recovery replays history onto the *initial* object, so `obj`
    /// must be the empty/initial state (its constructor is re-run by
    /// [`OnllUc::recover_object`] conceptually; here the caller passes it
    /// again).
    pub fn new(obj: T, threads: usize, rt: Arc<PmemRuntime>) -> Self {
        assert!(threads > 0, "need at least one thread");
        OnllUc {
            rt,
            inner: Mutex::new(Inner { ds: obj, order: 0 }),
            plogs: (0..threads).map(|_| LogImage::new()).collect(),
        }
    }

    /// Maximum registered threads.
    pub fn threads(&self) -> usize {
        self.plogs.len()
    }

    /// Executes `op` on behalf of `thread` with durable linearizable
    /// semantics.
    ///
    /// # Panics
    /// Panics if `thread >= self.threads()`.
    pub fn execute(&self, thread: usize, op: T::Op) -> T::Resp {
        if T::is_read_only(&op) {
            // ONLL's signature: reads take no persistence actions at all.
            let inner = self.inner.lock().expect("onll poisoned");
            return inner.ds.apply_readonly(&op);
        }
        // "Order now": linearize and apply.
        let (resp, index) = {
            let mut inner = self.inner.lock().expect("onll poisoned");
            let index = inner.order;
            inner.order += 1;
            (inner.ds.apply(&op), index)
        };
        // "Linearize later" (persist before completing): append
        // (index, op) to this thread's own persistent log — one line
        // flush + one fence, uncontended.
        self.plogs[thread].persist_entry(&self.rt, index, op);
        self.rt.clflushopt();
        self.rt.sfence();
        resp
    }

    /// Number of updates linearized so far (diagnostic; also the length of
    /// the history recovery would replay).
    pub fn history_len(&self) -> u64 {
        self.inner.lock().expect("onll poisoned").order
    }

    /// Observes the volatile object (test/diagnostic API).
    pub fn with_object<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let inner = self.inner.lock().expect("onll poisoned");
        f(&inner.ds)
    }

    /// Simulates a power failure: captures the per-thread persistent logs
    /// under a consistent cut.
    ///
    /// # Panics
    /// Panics unless the runtime has crash simulation enabled.
    pub fn simulate_crash(&self) -> (CrashToken, OnllCrashImage<T>) {
        self.rt.capture_cut(|| OnllCrashImage {
            logs: self
                .plogs
                .iter()
                .map(|l| l.persisted_range(0, u64::MAX))
                .collect(),
        })
    }

    /// ONLL's recovery: merge every thread's persisted `(index, op)` pairs
    /// by index and replay **the whole history** onto the initial object.
    ///
    /// Holes end the replay: an operation whose predecessor never persisted
    /// cannot be applied (the recovered state must be a *prefix* of the
    /// linearization order). Durable linearizability still holds because an
    /// update only completes after its own entry — and, by induction on the
    /// lock order, every predecessor's entry — is persistent. Returns the
    /// recovered object and the number of operations replayed.
    pub fn recover(_crash: CrashToken, image: &OnllCrashImage<T>, mut initial: T) -> (T, u64) {
        let mut merged: std::collections::BTreeMap<u64, &T::Op> = std::collections::BTreeMap::new();
        for log in &image.logs {
            for (idx, op) in log {
                merged.insert(*idx, op);
            }
        }
        let mut next = 0u64;
        for (idx, op) in merged {
            if idx != next {
                break; // hole: an in-flight op's entry never persisted
            }
            initial.apply(op);
            next += 1;
        }
        (initial, next)
    }
}

/// What ONLL's NVM holds at a crash: every thread's persisted log.
pub struct OnllCrashImage<T: SequentialObject> {
    /// Per-thread `(linearization index, operation)` pairs, ascending.
    pub logs: Vec<Vec<(u64, T::Op)>>,
}

impl<T: SequentialObject> OnllCrashImage<T> {
    /// Total persisted entries across all threads (= recovery replay work).
    pub fn total_entries(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
    use prep_seqds::recorder::{Recorder, RecorderOp};

    fn rt() -> Arc<PmemRuntime> {
        PmemRuntime::for_crash_tests()
    }

    #[test]
    fn updates_and_reads_roundtrip() {
        let uc = OnllUc::new(HashMap::new(), 2, rt());
        assert_eq!(
            uc.execute(0, MapOp::Insert { key: 1, value: 10 }),
            MapResp::Value(None)
        );
        assert_eq!(
            uc.execute(1, MapOp::Get { key: 1 }),
            MapResp::Value(Some(10))
        );
        assert_eq!(uc.history_len(), 1);
    }

    #[test]
    fn reads_never_flush_updates_flush_once() {
        let r = rt();
        let uc = OnllUc::new(HashMap::new(), 1, Arc::clone(&r));
        uc.execute(0, MapOp::Insert { key: 1, value: 1 });
        let s = r.stats().snapshot();
        assert_eq!(s.clflushopt, 1, "one line flush per update");
        assert_eq!(s.sfence, 1, "one fence per update");
        for _ in 0..100 {
            uc.execute(0, MapOp::Get { key: 1 });
        }
        let s2 = r.stats().snapshot();
        assert_eq!(s2.total_flushes(), s.total_flushes(), "reads flushed");
        assert_eq!(s2.sfence, s.sfence, "reads fenced");
    }

    #[test]
    fn recovery_replays_the_full_merged_history() {
        let uc = OnllUc::new(Recorder::new(), 3, rt());
        // Interleave updates from three threads.
        for i in 0..90u64 {
            uc.execute((i % 3) as usize, RecorderOp::Record(i));
        }
        let (token, image) = uc.simulate_crash();
        assert_eq!(image.total_entries(), 90);
        let (recovered, replayed) = OnllUc::recover(token, &image, Recorder::new());
        assert_eq!(replayed, 90);
        // The recovered history equals the linearization order, which (by
        // the lock) is exactly issue order here.
        let expect: Vec<u64> = (0..90).collect();
        assert_eq!(recovered.history(), &expect[..]);
    }

    #[test]
    fn concurrent_updates_recover_completely() {
        let uc = Arc::new(OnllUc::new(Recorder::new(), 4, rt()));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let uc = Arc::clone(&uc);
                s.spawn(move || {
                    for i in 0..200u64 {
                        uc.execute(t, RecorderOp::Record((t as u64) << 32 | i));
                    }
                });
            }
        });
        let (token, image) = uc.simulate_crash();
        let (recovered, replayed) = OnllUc::recover(token, &image, Recorder::new());
        // All 800 updates completed before the crash → all recovered
        // (durable linearizability), in linearization order with
        // per-thread FIFO.
        assert_eq!(replayed, 800);
        let mut next = [0u64; 4];
        for id in recovered.history() {
            let t = (id >> 32) as usize;
            assert_eq!(id & 0xffff_ffff, next[t]);
            next[t] += 1;
        }
    }

    #[test]
    fn recovery_work_grows_with_lifetime_not_size() {
        // The motivation for PREP's bounded log: a map with a *constant*
        // live size accumulates unbounded replay work under ONLL.
        let uc = OnllUc::new(HashMap::new(), 1, rt());
        for round in 0..50u64 {
            uc.execute(
                0,
                MapOp::Insert {
                    key: 7,
                    value: round,
                },
            );
            uc.execute(0, MapOp::Remove { key: 7 });
        }
        let (_token, image) = uc.simulate_crash();
        assert_eq!(
            image.total_entries(),
            100,
            "replay work = lifetime ops, though the map holds ≤1 entry"
        );
    }
}
