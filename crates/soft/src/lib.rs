//! A SOFT-style hand-crafted persistent hashtable.
//!
//! The PREP-UC paper frames its performance against the hashtable of Zuriel
//! et al. (OOPSLA 2019), built from **S**ets with an **O**ptimal
//! **F**lushing **T**echnique (§6 "PREP-UC versus Hand-Crafted Hashtable").
//! SOFT's essential properties, which this reimplementation preserves:
//!
//! * a **fixed** number of buckets, each a persistent linked list (the
//!   table is *not* resizable — hence the SOFT-1kB / SOFT-10kB variants in
//!   Figure 6);
//! * every key is held twice: a volatile copy used by all traversals and a
//!   persistent node (key, value, validity metadata) that is the *only*
//!   thing flushed;
//! * an **update persists exactly the modified words**: one cache line flush
//!   plus one fence per insert/remove — this is precisely what a black-box
//!   PUC cannot do, and why SOFT wins Figure 6;
//! * **read-only operations perform no flushes or fences at all**.
//!
//! Deviation (documented in DESIGN.md): the original is lock-free; here each
//! bucket is protected by a reader-writer spin lock. Figure 6's comparison
//! is about flush counts and NVM traffic, which are reproduced exactly;
//! lock-freedom affects progress guarantees, not the flush economics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap as StdHashMap;
use std::sync::{Arc, Mutex};

use prep_pmem::PmemRuntime;
use prep_sync::RwSpinLock;

/// One bucket: a chain of (key, value) pairs under a reader-writer lock.
type Bucket = RwSpinLock<Vec<(u64, u64)>>;

/// A persistent, fixed-bucket concurrent hash set with values (a map with
/// SOFT set semantics: `insert` fails on a present key).
pub struct SoftHashMap {
    buckets: Box<[Bucket]>,
    rt: Arc<PmemRuntime>,
    /// The NVM image: what a crash would preserve (maintained only when the
    /// runtime has crash simulation enabled).
    image: Mutex<StdHashMap<u64, u64>>,
}

impl SoftHashMap {
    /// Creates a table with `buckets` fixed buckets (SOFT-1kB → 1000,
    /// SOFT-10kB → 10000).
    ///
    /// # Panics
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize, rt: Arc<PmemRuntime>) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        SoftHashMap {
            buckets: (0..buckets).map(|_| RwSpinLock::new(Vec::new())).collect(),
            rt,
            image: Mutex::new(StdHashMap::new()),
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.buckets.len() as u64) as usize
    }

    /// Persist exactly the modified persistent node: one line, one fence —
    /// SOFT's "optimal flushing".
    fn persist_update(&self, key: u64, value: Option<u64>) {
        self.rt.clflushopt();
        self.rt.sfence();
        if self.rt.crash_sim_enabled() {
            let mut img = self.image.lock().expect("image poisoned");
            match value {
                Some(v) => {
                    img.insert(key, v);
                }
                None => {
                    img.remove(&key);
                }
            }
        }
    }

    /// Inserts `key → value`; returns false (no flush!) if already present.
    pub fn insert(&self, key: u64, value: u64) -> bool {
        let b = self.bucket_of(key);
        let mut chain = self.buckets[b].write();
        if chain.iter().any(|&(k, _)| k == key) {
            return false;
        }
        chain.push((key, value));
        // The persistent node (key, value, validity) is written and flushed
        // while the bucket is still locked, so the NVM image never reflects
        // an order that contradicts the linearization order.
        self.persist_update(key, Some(value));
        true
    }

    /// Removes `key`; returns false (no flush) if absent.
    pub fn remove(&self, key: u64) -> bool {
        let b = self.bucket_of(key);
        let mut chain = self.buckets[b].write();
        let Some(pos) = chain.iter().position(|&(k, _)| k == key) else {
            return false;
        };
        chain.swap_remove(pos);
        self.persist_update(key, None);
        true
    }

    /// Membership test: traverses the volatile copy only; **no flush, no
    /// fence**.
    pub fn contains(&self, key: u64) -> bool {
        let b = self.bucket_of(key);
        self.buckets[b].read().iter().any(|&(k, _)| k == key)
    }

    /// Looks up `key` (flush-free, like `contains`).
    pub fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .read()
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Entry count (O(buckets); diagnostic).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.read().len()).sum()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What recovery would rebuild from the persistent nodes: the exact
    /// set of (key, value) pairs whose persist completed before the crash.
    /// Requires a crash-sim runtime.
    pub fn recover_contents(&self) -> StdHashMap<u64, u64> {
        assert!(
            self.rt.crash_sim_enabled(),
            "recovery image is only maintained under crash simulation"
        );
        self.image.lock().expect("image poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_pmem::LatencyModel;

    fn rt_sim() -> Arc<PmemRuntime> {
        PmemRuntime::for_crash_tests()
    }

    #[test]
    fn set_semantics_insert_remove_contains() {
        let m = SoftHashMap::new(8, rt_sim());
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11), "duplicate insert must fail");
        assert!(m.contains(1));
        assert_eq!(m.get(1), Some(10));
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(!m.contains(1));
        assert!(m.is_empty());
    }

    #[test]
    fn updates_flush_exactly_one_line_and_one_fence() {
        let rt = rt_sim();
        let m = SoftHashMap::new(8, Arc::clone(&rt));
        m.insert(5, 50);
        let s = rt.stats().snapshot();
        assert_eq!(s.clflushopt, 1);
        assert_eq!(s.sfence, 1);
        m.remove(5);
        let s = rt.stats().snapshot();
        assert_eq!(s.clflushopt, 2);
        assert_eq!(s.sfence, 2);
    }

    #[test]
    fn failed_updates_and_reads_never_flush() {
        let rt = rt_sim();
        let m = SoftHashMap::new(8, Arc::clone(&rt));
        m.insert(5, 50);
        let base = rt.stats().snapshot();
        assert!(!m.insert(5, 51));
        assert!(!m.remove(99));
        assert!(m.contains(5));
        assert_eq!(m.get(5), Some(50));
        let s = rt.stats().snapshot();
        assert_eq!(s.total_flushes(), base.total_flushes());
        assert_eq!(s.sfence, base.sfence);
    }

    #[test]
    fn recovery_image_tracks_completed_updates() {
        let m = SoftHashMap::new(16, rt_sim());
        for k in 0..50u64 {
            m.insert(k, k * 2);
        }
        for k in 0..25u64 {
            m.remove(k);
        }
        let rec = m.recover_contents();
        assert_eq!(rec.len(), 25);
        for k in 25..50u64 {
            assert_eq!(rec.get(&k), Some(&(k * 2)));
        }
    }

    #[test]
    fn concurrent_inserts_are_exact_once() {
        const THREADS: u64 = 4;
        let m = Arc::new(SoftHashMap::new(64, rt_sim()));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut wins = 0usize;
                    for k in 0..500u64 {
                        if m.insert(k, k) {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 500, "each key inserted by exactly one thread");
        assert_eq!(m.len(), 500);
        assert_eq!(m.recover_contents().len(), 500);
    }

    #[test]
    fn bench_runtime_skips_image_maintenance() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        let m = SoftHashMap::new(8, rt);
        m.insert(1, 1);
        // recover_contents panics without crash sim:
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.recover_contents()));
        assert!(r.is_err());
    }
}
