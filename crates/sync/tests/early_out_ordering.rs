//! Regression stress tests for the reader fast-path "early-out" load.
//!
//! Both distributed rwlocks open `try_read` with a load of the writer word
//! that merely *declines early* when a writer is visible. That load used to
//! be SeqCst, which dragged a full fence into every read acquisition; it is
//! now Acquire, because it is not part of the store-buffering (SB) pair —
//! mutual exclusion rests entirely on the mark-then-recheck that follows
//! (reader marks its slot SeqCst, then re-checks the writer word SeqCst,
//! mirroring the writer's flag-then-scan). Weakening the early-out can
//! therefore change *when* a reader bails, never *whether* exclusion holds.
//!
//! These tests hammer exactly the interleaving the SB pair protects: writers
//! flipping the word while readers race through the fast path, with every
//! successful guard checking the exclusion invariant. Honest caveat: on
//! x86, Acquire and SeqCst loads compile to the same instruction, so this
//! cannot falsify the *ordering* argument on this host — it pins the
//! protocol-level invariant (no reader/writer overlap, no lost wakeups) that
//! any future weakening beyond Acquire, or a botched recheck, would break
//! even on TSO hardware.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use prep_sync::{DistRwLock, ReaderId, StrongTryRwLock};

const WRITERS: usize = 2;
const READERS: usize = 4;
const WRITES_EACH: u64 = 2_000;

/// Shared exclusion monitor: readers/writers bump it while inside the
/// critical section; any reader-while-writer overlap is caught immediately.
#[derive(Default)]
struct Monitor {
    readers_in: AtomicU64,
    writer_in: AtomicBool,
}

impl Monitor {
    fn enter_read(&self) {
        self.readers_in.fetch_add(1, Ordering::SeqCst);
        assert!(
            !self.writer_in.load(Ordering::SeqCst),
            "reader admitted while a writer holds the lock"
        );
    }
    fn exit_read(&self) {
        self.readers_in.fetch_sub(1, Ordering::SeqCst);
    }
    fn enter_write(&self) {
        assert!(
            !self.writer_in.swap(true, Ordering::SeqCst),
            "two writers inside the critical section"
        );
        assert_eq!(
            self.readers_in.load(Ordering::SeqCst),
            0,
            "writer admitted while readers hold the lock"
        );
    }
    fn exit_write(&self) {
        self.writer_in.store(false, Ordering::SeqCst);
    }
}

#[test]
fn dist_rw_early_out_never_admits_reader_under_writer() {
    let lock = Arc::new(DistRwLock::new(0u64, READERS));
    let mon = Arc::new(Monitor::default());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let (lock, mon) = (Arc::clone(&lock), Arc::clone(&mon));
            std::thread::spawn(move || {
                for _ in 0..WRITES_EACH {
                    let mut g = lock.write();
                    mon.enter_write();
                    *g += 1;
                    mon.exit_write();
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|slot| {
            let (lock, mon, stop) = (Arc::clone(&lock), Arc::clone(&mon), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Some(g) = lock.try_read(ReaderId::Slot(slot)) {
                        mon.enter_read();
                        assert!(*g >= last, "writer count went backwards");
                        last = *g;
                        seen += 1;
                        mon.exit_read();
                    }
                }
                seen
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    // Liveness half of the regression: an early-out that declines too
    // eagerly (e.g. reading a stale always-set writer word) would show up
    // as readers starving outright between write bursts.
    assert!(
        total_reads > 0,
        "readers never got through the fast path at all"
    );
    assert_eq!(*lock.write(), (WRITERS as u64) * WRITES_EACH);
}

#[test]
fn strong_try_early_out_never_admits_reader_under_writer() {
    let lock = Arc::new(StrongTryRwLock::with_reader_slots(0u64, READERS));
    let mon = Arc::new(Monitor::default());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let (lock, mon) = (Arc::clone(&lock), Arc::clone(&mon));
            std::thread::spawn(move || {
                for _ in 0..WRITES_EACH {
                    let mut g = lock.write();
                    mon.enter_write();
                    *g += 1;
                    mon.exit_write();
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let (lock, mon, stop) = (Arc::clone(&lock), Arc::clone(&mon), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Some(g) = lock.try_read() {
                        mon.enter_read();
                        let _ = *g;
                        seen += 1;
                        mon.exit_read();
                    }
                }
                seen
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(
        total_reads > 0,
        "readers never got through the fast path at all"
    );
    assert_eq!(*lock.write(), (WRITERS as u64) * WRITES_EACH);
}
