//! Polite spin-waiting.
//!
//! Every blocking loop in this workspace waits through [`Waiter`]: a short
//! burst of `spin_loop` hints, then `thread::yield_now`, then short sleeps.
//! On a machine with spare cores the fast path is indistinguishable from a
//! raw spin loop; on an oversubscribed machine (the common case for the
//! benchmark harness, which runs up to 96 logical workers) it lets the thread
//! holding the resource actually run.

use std::hint;
use std::thread;
use std::time::Duration;

/// Number of `spin_loop` rounds before the waiter starts yielding.
const SPIN_LIMIT: u32 = 6;
/// Number of `yield_now` rounds before the waiter starts sleeping.
const YIELD_LIMIT: u32 = 32;
/// Sleep quantum once the waiter has given up on spinning/yielding.
const SLEEP: Duration = Duration::from_micros(50);

/// An escalating spin-waiter: spin → yield → sleep.
///
/// ```
/// use prep_sync::Waiter;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true); // already set; loop exits immediately
/// let mut w = Waiter::new();
/// while !flag.load(Ordering::Acquire) {
///     w.wait();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Waiter {
    step: u32,
}

impl Waiter {
    /// Creates a fresh waiter in the spinning phase.
    #[inline]
    pub fn new() -> Self {
        Waiter { step: 0 }
    }

    /// Waits one round, escalating from spinning to yielding to sleeping.
    #[inline]
    pub fn wait(&mut self) {
        // Under the model checker, spinning must be visible to the
        // scheduler: every round becomes an instrumented yield (the
        // checker deprioritizes us until a write lands, and diagnoses
        // livelock if none ever does). Plain `spin_loop` hints would be
        // invisible no-ops there, and `thread::sleep` would stall the
        // whole single-token execution.
        #[cfg(prep_mc)]
        if prep_mc::thread::model_thread_index().is_some() {
            prep_mc::thread::yield_now();
            self.step = self.step.saturating_add(1);
            return;
        }
        if self.step < SPIN_LIMIT {
            for _ in 0..(1 << self.step) {
                hint::spin_loop();
            }
        } else if self.step < SPIN_LIMIT + YIELD_LIMIT {
            thread::yield_now();
        } else {
            thread::sleep(SLEEP);
        }
        self.step = self.step.saturating_add(1);
    }

    /// Resets the waiter back to the spinning phase.
    ///
    /// Call this after observing progress (the condition changed but the
    /// caller must keep waiting for a different condition).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Returns true once the waiter has escalated past pure spinning.
    ///
    /// Useful for callers that want to switch strategy (e.g. start helping)
    /// after a bounded amount of optimistic spinning.
    #[inline]
    pub fn is_contended(&self) -> bool {
        self.step >= SPIN_LIMIT
    }
}

/// Spins (politely) until `cond` returns true.
#[inline]
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut w = Waiter::new();
    while !cond() {
        w.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn waiter_escalates_monotonically() {
        let mut w = Waiter::new();
        assert!(!w.is_contended());
        for _ in 0..SPIN_LIMIT {
            w.wait();
        }
        assert!(w.is_contended());
        w.reset();
        assert!(!w.is_contended());
    }

    #[test]
    fn spin_until_observes_cross_thread_store() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        spin_until(|| flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn waiter_step_saturates() {
        let mut w = Waiter::new();
        // Drive far past every phase boundary; must not overflow.
        for _ in 0..(SPIN_LIMIT + YIELD_LIMIT + 4) {
            w.wait();
        }
        assert!(w.is_contended());
    }
}
