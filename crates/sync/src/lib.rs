//! Synchronization primitives for the PREP-UC reproduction.
//!
//! Node replication (NR-UC) and PREP-UC are built from a small number of
//! locking primitives that the paper names explicitly (§3, §4.1):
//!
//! * a **trylock** protecting each replica, used for combiner election
//!   ([`TryLock`]);
//! * a **reader-writer lock** per replica, claimed in write mode by the
//!   combiner and in read mode by read-only operations ([`RwSpinLock`]);
//! * a **starvation-free reader-writer lock**, the drop-in the paper suggests
//!   for starvation-free read-only operations (§4.2 "Liveness")
//!   ([`PhaseFairRwLock`]);
//! * a **strong try reader-writer lock**, required by the CX-UC/CX-PUC
//!   baselines of Correia et al. ([`StrongTryRwLock`]).
//!
//! All locks here are spin locks in the tradition of the originals, but every
//! wait loop goes through [`Waiter`], which spins briefly and then yields to
//! the OS scheduler. This matters on oversubscribed machines (many more
//! threads than cores): a pure spin loop would live-lock the benchmark
//! harness, while `Waiter` keeps the fast path identical to a spin lock when
//! a core is available.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod phase_fair;
mod rw_spin;
mod strong_try;
mod ticket;
mod trylock;
mod waiter;

pub use phase_fair::{PhaseFairReadGuard, PhaseFairRwLock, PhaseFairWriteGuard};
pub use rw_spin::{RwSpinLock, RwSpinReadGuard, RwSpinWriteGuard};
pub use strong_try::{StrongTryReadGuard, StrongTryRwLock, StrongTryWriteGuard};
pub use ticket::{TicketGuard, TicketLock};
pub use trylock::{TryLock, TryLockGuard};
pub use waiter::{spin_until, Waiter};

pub use crossbeam_utils::CachePadded;
