//! Synchronization primitives for the PREP-UC reproduction.
//!
//! Node replication (NR-UC) and PREP-UC are built from a small number of
//! locking primitives that the paper names explicitly (§3, §4.1):
//!
//! * a **trylock** protecting each replica, used for combiner election
//!   ([`TryLock`]);
//! * a **distributed reader-writer lock** per replica, claimed in write mode
//!   by the combiner and in read mode by read-only operations — one
//!   cacheline-padded slot per registered reader, so read acquisition makes
//!   no store to any line shared with another reader ([`DistRwLock`]; NR §3
//!   calls for exactly this "writer-preference variant of the distributed
//!   reader-writer lock");
//! * the **centralized reader-writer lock** it replaced, kept as the
//!   ablation baseline ([`RwSpinLock`]);
//! * a **starvation-free reader-writer lock**, the drop-in the paper suggests
//!   for starvation-free read-only operations (§4.2 "Liveness")
//!   ([`PhaseFairRwLock`]);
//! * the [`ReplicaLock`] trait abstracting over the three, so the replica
//!   holds whichever one the fairness mode selects;
//! * a **strong try reader-writer lock**, required by the CX-UC/CX-PUC
//!   baselines of Correia et al. ([`StrongTryRwLock`]);
//! * a **seqlock-style version cell** bracketing combiner writes so
//!   read-only operations can run lock-free and validate afterwards —
//!   zero RMWs, zero shared-line stores per read ([`SeqVersion`]);
//! * a **contention-adaptive selector** choosing Centralized / Distributed /
//!   Optimistic read routing from the observed read/write mix and
//!   validation-failure rate ([`AdaptiveSelector`]).
//!
//! All locks here are spin locks in the tradition of the originals, but every
//! wait loop goes through [`Waiter`], which spins briefly and then yields to
//! the OS scheduler. This matters on oversubscribed machines (many more
//! threads than cores): a pure spin loop would live-lock the benchmark
//! harness, while `Waiter` keeps the fast path identical to a spin lock when
//! a core is available.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;

mod adaptive;
mod dist_rw;
mod phase_fair;
mod replica_lock;
mod rw_spin;
mod seq_version;
mod strong_try;
mod ticket;
mod trylock;
mod waiter;

pub use adaptive::{AdaptiveSelector, ReadMode, ReadWindow, WINDOW_READS_PER_READER};
pub use dist_rw::{DistReadGuard, DistRwLock, DistWriteGuard, ReaderId};
pub use phase_fair::{PhaseFairReadGuard, PhaseFairRwLock, PhaseFairWriteGuard};
pub use replica_lock::ReplicaLock;
pub use rw_spin::{RwSpinLock, RwSpinReadGuard, RwSpinWriteGuard};
pub use seq_version::SeqVersion;
pub use strong_try::{StrongTryReadGuard, StrongTryRwLock, StrongTryWriteGuard};
pub use ticket::{TicketGuard, TicketLock};
pub use trylock::{TryLock, TryLockGuard};
pub use waiter::{spin_until, Waiter};

pub use crossbeam_utils::CachePadded;
