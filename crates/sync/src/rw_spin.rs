//! Writer-preference reader-writer spin lock.
//!
//! This is the per-replica reader-writer lock of NR-UC (§3): the combiner
//! claims it in write mode to apply log entries; read-only operations claim
//! it in read mode. Writer preference matters here — the combiner is applying
//! updates *on behalf of every thread on the node*, so letting a stream of
//! readers starve it would stall the whole node.
//!
//! Layout of the 64-bit state word:
//!
//! ```text
//! bit 63        : writer holds the lock
//! bits 32..48   : count of writers waiting to acquire
//! bits  0..32   : count of readers holding the lock
//! ```

use crate::cell::{AtomicU64, Ordering};
use std::cell::UnsafeCell;

use crossbeam_utils::CachePadded;

use crate::Waiter;

const WRITER: u64 = 1 << 63;
const WAITING_UNIT: u64 = 1 << 32;
const WAITING_MASK: u64 = 0xffff << 32;
const READER_MASK: u64 = (1 << 32) - 1;

/// A writer-preference reader-writer spin lock guarding a `T`.
///
/// ```
/// use prep_sync::RwSpinLock;
/// let lock = RwSpinLock::new(vec![1, 2, 3]);
/// {
///     let r1 = lock.read();
///     let r2 = lock.read(); // readers share
///     assert_eq!(r1.len() + r2.len(), 6);
/// }
/// lock.write().push(4);
/// assert_eq!(lock.read().len(), 4);
/// ```
// lock-level: 2 a ReplicaLock implementation — see the trait's level
#[derive(Debug)]
pub struct RwSpinLock<T> {
    state: CachePadded<AtomicU64>,
    data: UnsafeCell<T>,
}

// SAFETY: readers get shared access, the writer exclusive access; standard
// RwLock bounds (T: Send + Sync for Sync because readers on multiple threads
// may alias &T).
unsafe impl<T: Send> Send for RwSpinLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwSpinLock<T> {}

impl<T> RwSpinLock<T> {
    /// Creates an unlocked lock around `value`.
    pub fn new(value: T) -> Self {
        RwSpinLock {
            state: CachePadded::new(AtomicU64::new(0)),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock in read (shared) mode, blocking politely.
    ///
    /// Readers defer to both an active writer and any *waiting* writers
    /// (writer preference).
    pub fn read(&self) -> RwSpinReadGuard<'_, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = self.try_read() {
                return g;
            }
            w.wait();
        }
    }

    /// Attempts to acquire the lock in read mode without blocking.
    #[inline]
    pub fn try_read(&self) -> Option<RwSpinReadGuard<'_, T>> {
        // ord: optimistic snapshot only; the CAS below re-validates it.
        let s = self.state.load(Ordering::Relaxed);
        if s & (WRITER | WAITING_MASK) != 0 {
            return None;
        }
        debug_assert!(s & READER_MASK < READER_MASK, "reader count overflow");
        if self
            .state
            // ord: Acquire pairs with the writer guard's Release drop, so a
            // reader admitted here sees every write of the previous writer;
            // failure is a retried snapshot, Relaxed suffices.
            .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(RwSpinReadGuard { lock: self })
        } else {
            None
        }
    }

    /// Acquires the lock in write (exclusive) mode, blocking politely.
    pub fn write(&self) -> RwSpinWriteGuard<'_, T> {
        // Announce intent so new readers hold off.
        // ord: the waiting count only gates reader admission (an advisory
        // counter); the data-protecting edge is the CAS below.
        self.state.fetch_add(WAITING_UNIT, Ordering::Relaxed);
        let mut w = Waiter::new();
        loop {
            // ord: optimistic snapshot only; the CAS below re-validates it.
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0 && s & READER_MASK == 0 {
                // Convert one waiting slot into the active-writer bit.
                let target = (s - WAITING_UNIT) | WRITER;
                if self
                    .state
                    // ord: Acquire pairs with reader/writer guard Release
                    // drops — the new writer sees all prior critical
                    // sections; failed CAS just loops.
                    .compare_exchange_weak(s, target, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return RwSpinWriteGuard { lock: self };
                }
            }
            w.wait();
        }
    }

    /// Attempts to acquire the lock in write mode without blocking.
    #[inline]
    pub fn try_write(&self) -> Option<RwSpinWriteGuard<'_, T>> {
        // ord: optimistic snapshot only; the CAS below re-validates it.
        let s = self.state.load(Ordering::Relaxed);
        if s & WRITER != 0 || s & READER_MASK != 0 {
            return None;
        }
        if self
            .state
            // ord: Acquire pairs with guard Release drops (see `write`);
            // failure returns None, no ordering needed.
            .compare_exchange(s, s | WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(RwSpinWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns the number of readers currently holding the lock (advisory).
    pub fn reader_count(&self) -> u64 {
        // ord: advisory statistic; callers make no decisions that need to
        // synchronize with guard hand-off.
        self.state.load(Ordering::Relaxed) & READER_MASK
    }

    /// Raw pointer to the protected data, for the optimistic (seqlock)
    /// read path. Dereferencing it without holding the lock is only sound
    /// under the [`crate::ReplicaLock::with_peek`] contract.
    pub(crate) fn data_ptr(&self) -> *const T {
        self.data.get()
    }

    /// Returns a mutable reference to the protected data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Shared-mode RAII guard for [`RwSpinLock`].
#[derive(Debug)]
pub struct RwSpinReadGuard<'a, T> {
    lock: &'a RwSpinLock<T>,
}

impl<T> std::ops::Deref for RwSpinReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: shared guard; no writer can be active while readers hold.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwSpinReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release ends the read-side critical section; the next
        // writer's Acquire CAS orders its writes after our reads.
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive-mode RAII guard for [`RwSpinLock`].
#[derive(Debug)]
pub struct RwSpinWriteGuard<'a, T> {
    lock: &'a RwSpinLock<T>,
}

impl<T> std::ops::Deref for RwSpinWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: exclusive guard.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwSpinWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwSpinWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release publishes the critical section's writes to the next
        // Acquire CAS (reader or writer admission).
        self.lock.state.fetch_and(!WRITER, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn readers_share_writers_exclude() {
        let lock = RwSpinLock::new(5u64);
        let r1 = lock.try_read().unwrap();
        let r2 = lock.try_read().unwrap();
        assert_eq!(lock.reader_count(), 2);
        assert!(lock.try_write().is_none());
        drop((r1, r2));
        let w = lock.try_write().unwrap();
        assert!(lock.try_read().is_none());
        assert!(lock.try_write().is_none());
        drop(w);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let lock = Arc::new(RwSpinLock::new(0u64));
        let r = lock.read();
        let l2 = Arc::clone(&lock);
        let writer = thread::spawn(move || {
            *l2.write() = 1;
        });
        // Wait until the writer has registered its intent.
        crate::spin_until(|| lock.state.load(Ordering::Relaxed) & WAITING_MASK != 0);
        // Writer preference: a new reader must now fail.
        assert!(lock.try_read().is_none());
        drop(r);
        writer.join().unwrap();
        assert_eq!(*lock.read(), 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        const THREADS: usize = 8;
        const ITERS: usize = 500;
        let lock = Arc::new(RwSpinLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        let mut g = lock.write();
                        let v = *g;
                        *g = v + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), THREADS * ITERS);
    }

    #[test]
    fn readers_observe_consistent_snapshots() {
        // Writer keeps the two halves of a pair equal; readers must never
        // observe them mid-update.
        let lock = Arc::new(RwSpinLock::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let wl = Arc::clone(&lock);
        let ws = Arc::clone(&stop);
        let writer = thread::spawn(move || {
            let mut i = 0u64;
            while !ws.load(Ordering::Relaxed) {
                let mut g = wl.write();
                g.0 = i;
                g.1 = i;
                i += 1;
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..2000 {
                        let g = lock.read();
                        assert_eq!(g.0, g.1, "torn read through RwSpinLock");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
