//! The combiner trylock.
//!
//! NR-UC protects each replica with a trylock (the *combiner lock*, §3): a
//! thread that wins the trylock becomes the combiner for its NUMA node; the
//! losers park on their batch slots instead of queueing on the lock. The only
//! operations ever needed are `try_lock` and `unlock` — there is deliberately
//! no blocking `lock`, because blocking on combiner election would defeat
//! flat combining.

use crate::cell::{AtomicBool, Ordering};
use std::cell::UnsafeCell;

use crossbeam_utils::CachePadded;

/// A cache-padded test-and-test-and-set trylock guarding a `T`.
///
/// ```
/// use prep_sync::TryLock;
/// let lock = TryLock::new(41);
/// {
///     let mut g = lock.try_lock().expect("uncontended");
///     *g += 1;
/// }
/// assert_eq!(*lock.try_lock().unwrap(), 42);
/// ```
// lock-level: 1 per-lane / per-replica combiner election, taken after
// the level-0 gate and before the level-2 replica rwlocks
#[derive(Debug)]
pub struct TryLock<T> {
    locked: CachePadded<AtomicBool>,
    data: UnsafeCell<T>,
}

// SAFETY: the lock guarantees exclusive access to `data` while held, so the
// container is Sync whenever T may be sent between threads.
unsafe impl<T: Send> Sync for TryLock<T> {}
unsafe impl<T: Send> Send for TryLock<T> {}

impl<T> TryLock<T> {
    /// Creates an unlocked trylock around `value`.
    pub fn new(value: T) -> Self {
        TryLock {
            locked: CachePadded::new(AtomicBool::new(false)),
            data: UnsafeCell::new(value),
        }
    }

    /// Attempts to acquire the lock; returns a guard on success.
    ///
    /// Uses test-and-test-and-set: a relaxed load filters out the contended
    /// case before attempting the atomic swap, avoiding cache-line
    /// ping-ponging between would-be combiners.
    #[inline]
    pub fn try_lock(&self) -> Option<TryLockGuard<'_, T>> {
        // ord: test-and-test-and-set pre-filter; losing combiners bail, and
        // winners are validated by the CAS below.
        if self.locked.load(Ordering::Relaxed) {
            return None;
        }
        if self
            .locked
            // ord: Acquire pairs with the Release store in Drop — the new
            // combiner sees the previous combiner's batch state; failure
            // means someone else combines, no ordering needed.
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(TryLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns true if the lock is currently held by some thread.
    ///
    /// Purely advisory: the answer may be stale by the time it is observed.
    #[inline]
    pub fn is_locked(&self) -> bool {
        // ord: advisory by contract (see doc); stale answers are fine.
        self.locked.load(Ordering::Relaxed)
    }

    /// Returns a mutable reference to the protected data.
    ///
    /// Requires `&mut self`, so no locking is necessary.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// RAII guard for [`TryLock`]; releases the lock on drop.
#[derive(Debug)]
pub struct TryLockGuard<'a, T> {
    lock: &'a TryLock<T>,
}

impl<T> std::ops::Deref for TryLockGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusive ownership.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for TryLockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves exclusive ownership.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for TryLockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release publishes the combiner's writes to the next winner's
        // Acquire CAS.
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn second_try_lock_fails_while_held() {
        let lock = TryLock::new(0u32);
        let g = lock.try_lock().unwrap();
        assert!(lock.try_lock().is_none());
        assert!(lock.is_locked());
        drop(g);
        assert!(!lock.is_locked());
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = TryLock::new(7);
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 8);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 1000;
        let lock = Arc::new(TryLock::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                let mut done = 0;
                let mut w = crate::Waiter::new();
                while done < ITERS {
                    if let Some(mut g) = lock.try_lock() {
                        // Non-atomic RMW inside the critical section: any
                        // mutual-exclusion violation shows up as a lost count.
                        let v = *g;
                        *g = v + 1;
                        done += 1;
                        w.reset();
                    } else {
                        w.wait();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.try_lock().unwrap(), THREADS * ITERS);
    }
}
