//! Strong try reader-writer lock.
//!
//! The CX universal construction of Correia et al. (the paper's baseline,
//! §2.3) coordinates access to its 2n replicas with a *strong try*
//! reader-writer lock: `try_*` operations never fail spuriously — if a try
//! returns failure, the lock was genuinely held in a conflicting mode at some
//! instant during the call. This lets CX threads scan the replica array and
//! take the first available replica without ever blocking on a lock that is
//! actually free.
//!
//! State: bit 63 = writer, low bits = reader count.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::Waiter;

const WRITER: u64 = 1 << 63;
const READER_MASK: u64 = WRITER - 1;

/// A strong try reader-writer lock guarding a `T`.
///
/// ```
/// use prep_sync::StrongTryRwLock;
/// let lock = StrongTryRwLock::new(0u32);
/// let w = lock.try_write().expect("free lock: strong try must succeed");
/// assert!(lock.try_read().is_none());
/// drop(w);
/// assert!(lock.try_read().is_some());
/// ```
#[derive(Debug)]
pub struct StrongTryRwLock<T> {
    state: CachePadded<AtomicU64>,
    data: UnsafeCell<T>,
}

// SAFETY: standard RwLock bounds.
unsafe impl<T: Send> Send for StrongTryRwLock<T> {}
unsafe impl<T: Send + Sync> Sync for StrongTryRwLock<T> {}

impl<T> StrongTryRwLock<T> {
    /// Creates an unlocked lock around `value`.
    pub fn new(value: T) -> Self {
        StrongTryRwLock {
            state: CachePadded::new(AtomicU64::new(0)),
            data: UnsafeCell::new(value),
        }
    }

    /// Attempts to acquire in write mode.
    ///
    /// Strong semantics: returns `None` only if the lock was observed held
    /// (by a writer or ≥1 reader) during the call.
    #[inline]
    pub fn try_write(&self) -> Option<StrongTryWriteGuard<'_, T>> {
        // A single strong CAS suffices: failure proves the state was nonzero
        // (held) at the failure instant.
        if self
            .state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(StrongTryWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Attempts to acquire in read mode.
    ///
    /// Strong semantics: only a *writer* causes failure. Interference from
    /// other readers retries internally — another reader arriving is not a
    /// conflicting mode.
    #[inline]
    pub fn try_read(&self) -> Option<StrongTryReadGuard<'_, T>> {
        let mut s = self.state.load(Ordering::Relaxed);
        loop {
            if s & WRITER != 0 {
                return None;
            }
            debug_assert!(s & READER_MASK < READER_MASK, "reader count overflow");
            match self
                .state
                .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => return Some(StrongTryReadGuard { lock: self }),
                Err(actual) => s = actual,
            }
        }
    }

    /// Acquires in read mode, blocking politely until no writer holds.
    pub fn read(&self) -> StrongTryReadGuard<'_, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = self.try_read() {
                return g;
            }
            w.wait();
        }
    }

    /// Acquires in write mode, blocking politely until fully free.
    pub fn write(&self) -> StrongTryWriteGuard<'_, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = self.try_write() {
                return g;
            }
            w.wait();
        }
    }

    /// Returns a mutable reference to the protected data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared-mode RAII guard for [`StrongTryRwLock`].
#[derive(Debug)]
pub struct StrongTryReadGuard<'a, T> {
    lock: &'a StrongTryRwLock<T>,
}

impl<T> std::ops::Deref for StrongTryReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: shared guard held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for StrongTryReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive-mode RAII guard for [`StrongTryRwLock`].
#[derive(Debug)]
pub struct StrongTryWriteGuard<'a, T> {
    lock: &'a StrongTryRwLock<T>,
}

impl<T> std::ops::Deref for StrongTryWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: exclusive guard held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for StrongTryWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard held.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for StrongTryWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.state.fetch_and(!WRITER, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_write_fails_against_reader_and_writer() {
        let lock = StrongTryRwLock::new(());
        let r = lock.try_read().unwrap();
        assert!(lock.try_write().is_none());
        drop(r);
        let w = lock.try_write().unwrap();
        assert!(lock.try_write().is_none());
        assert!(lock.try_read().is_none());
        drop(w);
    }

    #[test]
    fn try_read_succeeds_alongside_readers() {
        let lock = StrongTryRwLock::new(());
        let _r1 = lock.try_read().unwrap();
        let _r2 = lock.try_read().unwrap();
        let _r3 = lock.try_read().unwrap();
        assert_eq!(lock.state.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn try_read_retries_through_reader_interference() {
        // Hammer try_read from many threads with no writer present; every
        // attempt must succeed (strong semantics: readers don't conflict).
        const THREADS: usize = 8;
        const ITERS: usize = 2000;
        let lock = Arc::new(StrongTryRwLock::new(()));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        let g = lock
                            .try_read()
                            .expect("try_read failed with no writer present");
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn writes_are_mutually_exclusive() {
        const THREADS: usize = 8;
        const ITERS: usize = 500;
        let lock = Arc::new(StrongTryRwLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        let mut g = lock.write();
                        *g += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), THREADS * ITERS);
    }
}
