//! Strong try reader-writer lock.
//!
//! The CX universal construction of Correia et al. (the paper's baseline,
//! §2.3) coordinates access to its 2n replicas with a *strong try*
//! reader-writer lock: `try_*` operations never fail spuriously — if a try
//! returns failure, a conflicting acquisition was genuinely present at some
//! instant during the call. This lets CX threads scan the replica array and
//! take the first available replica without ever blocking on a lock that is
//! actually free.
//!
//! Readers count on **read-indicator stripes**: an array of cacheline-padded
//! counters, each thread hashing to one stripe, exactly like the per-thread
//! read indicators of the reference CX implementation. With one stripe
//! (the [`StrongTryRwLock::new`] default) this degenerates to a single
//! shared reader count; [`StrongTryRwLock::with_reader_slots`] spreads
//! read-heavy traffic across `n` lines so CX's read path stops funneling
//! every reader through one cacheline (the same distributed-reader idea as
//! [`crate::DistRwLock`], adapted to strong-try semantics).
//!
//! Precision note, inherited from the read-indicator design: a `try_read`
//! overlapping a concurrent `try_write` *probe* (one that raises the writer
//! flag, finds a reader on some stripe, and backs out) fails as if against
//! a real writer. `try_write` failures remain strictly genuine — they prove
//! a writer held the flag or a reader indicator was raised at that instant.
//! CX retries its read loop regardless, so this costs at most a re-poll.

use crate::cell::{AtomicU64, Ordering};
use std::cell::UnsafeCell;

use crossbeam_utils::CachePadded;

use crate::Waiter;

const WRITER: u64 = 1 << 63;

/// The stripe a thread's read indications land on: threads are numbered
/// round-robin on first use, then reduced modulo the lock's stripe count.
fn thread_ordinal() -> usize {
    // Under the model checker the ordinal must be deterministic per
    // execution (it picks the stripe, hence the memory-access pattern):
    // use the model-thread index instead of the process-global dispenser.
    #[cfg(prep_mc)]
    if let Some(t) = prep_mc::thread::model_thread_index() {
        return t;
    }
    // Deliberately std, not crate::cell: a process-global id dispenser
    // must not become a model-checked location (its count carries across
    // executions and would make schedules diverge).
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    ORDINAL.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            // ord: unique-id dispenser; atomicity of the RMW is all that
            // matters, nothing else is published with it.
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

/// A strong try reader-writer lock guarding a `T`.
///
/// ```
/// use prep_sync::StrongTryRwLock;
/// let lock = StrongTryRwLock::new(0u32);
/// let w = lock.try_write().expect("free lock: strong try must succeed");
/// assert!(lock.try_read().is_none());
/// drop(w);
/// assert!(lock.try_read().is_some());
/// ```
// lock-level: 2 a ReplicaLock implementation — see the trait's level
#[derive(Debug)]
pub struct StrongTryRwLock<T> {
    /// Bit 63: writer holds. Readers only load this word.
    writer: CachePadded<AtomicU64>,
    /// Read-indicator stripes; a reader counts on `stripes[ordinal % n]`.
    stripes: Box<[CachePadded<AtomicU64>]>,
    data: UnsafeCell<T>,
}

// SAFETY: standard RwLock bounds.
unsafe impl<T: Send> Send for StrongTryRwLock<T> {}
unsafe impl<T: Send + Sync> Sync for StrongTryRwLock<T> {}

impl<T> StrongTryRwLock<T> {
    /// Creates an unlocked lock around `value` with a single reader stripe
    /// (the centralized baseline).
    pub fn new(value: T) -> Self {
        Self::with_reader_slots(value, 1)
    }

    /// Creates an unlocked lock around `value` with `slots` read-indicator
    /// stripes (clamped to ≥ 1). Readers hash per-thread across stripes;
    /// writers scan all of them.
    pub fn with_reader_slots(value: T, slots: usize) -> Self {
        StrongTryRwLock {
            writer: CachePadded::new(AtomicU64::new(0)),
            stripes: (0..slots.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            data: UnsafeCell::new(value),
        }
    }

    /// Number of read-indicator stripes.
    pub fn reader_slots(&self) -> usize {
        self.stripes.len()
    }

    /// Readers currently indicated across all stripes (advisory).
    pub fn reader_count(&self) -> u64 {
        // ord: advisory statistic; no decision synchronizes on it.
        self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Attempts to acquire in write mode.
    ///
    /// Strong semantics: returns `None` only if, at some instant during the
    /// call, a writer held the lock or a reader indicator was raised.
    #[inline]
    pub fn try_write(&self) -> Option<StrongTryWriteGuard<'_, T>> {
        if self
            .writer
            // ord: SeqCst store side of the store-buffering pair (flag-
            // then-scan vs the readers' indicate-then-check); also
            // Acquire-pairs with the previous writer's Release drop.
            // Failure returns None, no ordering needed.
            .compare_exchange(0, WRITER, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // Flag is up: new readers back off. Any indicator still raised is a
        // reader that acquired before our flag — a genuine conflict.
        for s in self.stripes.iter() {
            // ord: SeqCst load side of the SB pair -- must not hoist above
            // the flag CAS, or we could miss a reader whose indicator
            // missed our flag.
            if s.load(Ordering::SeqCst) != 0 {
                // ord: Release backs the flag out without leaking the probe.
                self.writer.fetch_and(!WRITER, Ordering::Release);
                return None;
            }
        }
        Some(StrongTryWriteGuard { lock: self })
    }

    /// Attempts to acquire in read mode.
    ///
    /// Interference from other readers retries internally (another reader
    /// arriving is not a conflicting mode); only a writer flag — held, or
    /// raised by an in-flight `try_write` probe — causes failure.
    #[inline]
    pub fn try_read(&self) -> Option<StrongTryReadGuard<'_, T>> {
        // ord: early-out only -- NOT part of the SB protocol (the
        // indicate + SeqCst recheck below is); Acquire suffices to order
        // us after a finishing writer we observe here.
        if self.writer.load(Ordering::Acquire) != 0 {
            return None;
        }
        let stripe = thread_ordinal() % self.stripes.len();
        // ord: SeqCst store side of the SB pair: indicate-then-check vs
        // the writer's flag-then-scan.
        self.stripes[stripe].fetch_add(1, Ordering::SeqCst);
        // ord: SeqCst load side of the SB pair (see indicate above).
        if self.writer.load(Ordering::SeqCst) != 0 {
            // A writer raised its flag between our two loads; defer to it.
            // ord: Release so the aborted attempt cannot leak past the
            // unindicate.
            self.stripes[stripe].fetch_sub(1, Ordering::Release);
            return None;
        }
        Some(StrongTryReadGuard { lock: self, stripe })
    }

    /// Acquires in read mode, blocking politely until no writer holds.
    pub fn read(&self) -> StrongTryReadGuard<'_, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = self.try_read() {
                return g;
            }
            w.wait();
        }
    }

    /// Acquires in write mode, blocking politely until fully free.
    pub fn write(&self) -> StrongTryWriteGuard<'_, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = self.try_write() {
                return g;
            }
            w.wait();
        }
    }

    /// Runs `f` against the protected data **without acquiring the lock** —
    /// the optimistic (seqlock) read path for CX's strong-try replicas.
    ///
    /// # Safety
    ///
    /// Same contract as [`crate::ReplicaLock::with_peek`]: a writer may
    /// mutate concurrently, so the caller must bracket the call with an
    /// external write-detection protocol (e.g. [`crate::SeqVersion`]) and
    /// discard everything `f` observed when that bracket reports an
    /// overlapping write; `f` must tolerate torn values without faulting.
    pub unsafe fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // SAFETY: the caller upholds the seqlock contract above; we only
        // materialize the unsynchronized shared reference it promises to
        // treat as suspect.
        f(unsafe { &*self.data.get() })
    }

    /// Returns a mutable reference to the protected data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared-mode RAII guard for [`StrongTryRwLock`].
#[derive(Debug)]
pub struct StrongTryReadGuard<'a, T> {
    lock: &'a StrongTryRwLock<T>,
    stripe: usize,
}

impl<T> std::ops::Deref for StrongTryReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: shared guard held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for StrongTryReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release publishes the read section to the writer's
        // indicator scan.
        self.lock.stripes[self.stripe].fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive-mode RAII guard for [`StrongTryRwLock`].
#[derive(Debug)]
pub struct StrongTryWriteGuard<'a, T> {
    lock: &'a StrongTryRwLock<T>,
}

impl<T> std::ops::Deref for StrongTryWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: exclusive guard held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for StrongTryWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard held.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for StrongTryWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release publishes the write section to the next acquirer's
        // Acquire/SeqCst load of the writer word.
        self.lock.writer.fetch_and(!WRITER, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_write_fails_against_reader_and_writer() {
        let lock = StrongTryRwLock::new(());
        let r = lock.try_read().unwrap();
        assert!(lock.try_write().is_none());
        drop(r);
        let w = lock.try_write().unwrap();
        assert!(lock.try_write().is_none());
        assert!(lock.try_read().is_none());
        drop(w);
    }

    #[test]
    fn try_read_succeeds_alongside_readers() {
        let lock = StrongTryRwLock::new(());
        let _r1 = lock.try_read().unwrap();
        let _r2 = lock.try_read().unwrap();
        let _r3 = lock.try_read().unwrap();
        assert_eq!(lock.reader_count(), 3);
    }

    #[test]
    fn striped_readers_count_and_drain() {
        let lock = Arc::new(StrongTryRwLock::with_reader_slots((), 4));
        assert_eq!(lock.reader_slots(), 4);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        drop(lock.try_read().expect("no writer present"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.reader_count(), 0);
        // Fully drained: a writer must get in.
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn try_read_retries_through_reader_interference() {
        // Hammer try_read from many threads with no writer present; every
        // attempt must succeed (strong semantics: readers don't conflict).
        const THREADS: usize = 8;
        const ITERS: usize = 2000;
        let lock = Arc::new(StrongTryRwLock::new(()));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        let g = lock
                            .try_read()
                            .expect("try_read failed with no writer present");
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.reader_count(), 0);
    }

    #[test]
    fn writes_are_mutually_exclusive() {
        const THREADS: usize = 8;
        const ITERS: usize = 500;
        let lock = Arc::new(StrongTryRwLock::with_reader_slots(0usize, 4));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        let mut g = lock.write();
                        *g += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), THREADS * ITERS);
    }

    #[test]
    fn striped_readers_exclude_writers_without_tearing() {
        let lock = Arc::new(StrongTryRwLock::with_reader_slots((0u64, 0u64), 4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let wl = Arc::clone(&lock);
        let ws = Arc::clone(&stop);
        let writer = thread::spawn(move || {
            let mut i = 0u64;
            while !ws.load(Ordering::Relaxed) {
                if let Some(mut g) = wl.try_write() {
                    i += 1;
                    g.0 = i;
                    g.1 = i;
                }
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..2000 {
                        let g = lock.read();
                        assert_eq!(g.0, g.1, "torn read through striped StrongTryRwLock");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
