//! Contention-adaptive read-mode selection.
//!
//! The readscale figure shows no single read path wins everywhere:
//!
//! * **Optimistic** (seqlock-validated, [`crate::SeqVersion`]) is unbeatable
//!   when writes are rare — zero RMWs, zero shared-line stores — but burns
//!   retries when combiners churn the replica;
//! * **Distributed** ([`crate::DistRwLock`] dedicated slots) keeps readers
//!   off each other's cachelines but costs a SeqCst RMW + load per read,
//!   which on low-contention hardware (or a single-CPU VM) is strictly more
//!   expensive than the centralized CAS;
//! * **Centralized** (one shared reader counter) has the cheapest single
//!   acquisition and wins when writes are frequent enough that reader-side
//!   cacheline ping-pong is noise against combiner traffic.
//!
//! [`AdaptiveSelector`] picks between them at runtime from a windowed view
//! of the read/write mix and the optimistic validation-failure rate. It is
//! deliberately *advisory*: every mode is correct for every workload (the
//! slot and shared paths are both real lock acquisitions, and optimistic
//! reads validate), so the selector can be racy, cheap, and wrong for a
//! window without affecting linearizability — only throughput.
//!
//! Hysteresis: a mode switch requires the same decision on two consecutive
//! windows. Without it, a workload sitting near a threshold flip-flops
//! every window and pays the worst of both paths (cold cachelines after
//! every switch).

use crate::cell::{AtomicU64, AtomicU8, Ordering};

use crossbeam_utils::CachePadded;

/// How a read-only operation should acquire its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReadMode {
    /// Count on the shared overflow line (one RMW on one hot line).
    Centralized = 0,
    /// Mark the reader's dedicated slot line (one RMW on a private line).
    Distributed = 1,
    /// Seqlock-validated lock-free read (loads only); falls back to
    /// [`ReadMode::Distributed`] on validation failure.
    Optimistic = 2,
}

impl ReadMode {
    fn from_u8(v: u8) -> ReadMode {
        match v {
            0 => ReadMode::Centralized,
            1 => ReadMode::Distributed,
            _ => ReadMode::Optimistic,
        }
    }
}

/// Totals observed by the selector at evaluation time. All fields are
/// monotonically increasing counters; the selector differences them against
/// the previous window itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadWindow {
    /// Read-only operations completed (any path).
    pub reads: u64,
    /// Write brackets completed (combiner batches, not individual ops).
    pub writes: u64,
    /// Optimistic reads that failed validation.
    pub validation_failures: u64,
}

/// Evaluate roughly every this many reads per reader (callers amortize the
/// selector to one [`AdaptiveSelector::observe`] per
/// `WINDOW_READS_PER_READER` of their own reads).
pub const WINDOW_READS_PER_READER: u64 = 256;

/// Validation failures per read above which optimism is clearly losing:
/// fail rate > 1/FAIL_RATE_DENOM disqualifies [`ReadMode::Optimistic`].
const FAIL_RATE_DENOM: u64 = 16;

/// Reads-per-write at or above which the workload counts as read-mostly
/// (optimism wins: most reads complete between combiner batches).
const READ_MOSTLY_RATIO: u64 = 8;

/// Reads-per-write below which the workload counts as write-heavy
/// (centralize: reader slot traffic is noise against combiner churn, and
/// the writer's drain scan over β+1 slot lines is the real cost).
const WRITE_HEAVY_RATIO: u64 = 2;

/// A windowed, hysteresis-damped selector for [`ReadMode`].
///
/// Decision rule per window (deltas of [`ReadWindow`] totals):
///
/// 1. failure rate > 1/16 of reads → [`ReadMode::Distributed`] (optimism is
///    thrashing against combiners);
/// 2. reads ≥ 8× writes (or no writes at all) → [`ReadMode::Optimistic`];
/// 3. reads < 2× writes → [`ReadMode::Centralized`];
/// 4. otherwise → [`ReadMode::Distributed`].
///
/// A switch is applied only when two consecutive windows agree.
#[derive(Debug)]
pub struct AdaptiveSelector {
    /// Current mode, read by every adaptive read; padded so the (rare)
    /// selector stores don't invalidate a line readers also need for
    /// something else.
    mode: CachePadded<AtomicU8>,
    /// Mode proposed by the previous window, for hysteresis; `NO_PENDING`
    /// when the previous window agreed with the current mode.
    // shared-line: touched only on the amortized once-per-window
    // evaluation path, never per read; padding four cold words would
    // waste three cachelines.
    pending: AtomicU8,
    /// Totals at the last evaluation, so observe() can difference.
    // shared-line: cold bookkeeping, window-rate writes only (see pending).
    last_reads: AtomicU64,
    // shared-line: cold bookkeeping, window-rate writes only (see pending).
    last_writes: AtomicU64,
    // shared-line: cold bookkeeping, window-rate writes only (see pending).
    last_failures: AtomicU64,
}

const NO_PENDING: u8 = u8::MAX;

impl AdaptiveSelector {
    /// Creates a selector starting in `initial` mode.
    pub fn new(initial: ReadMode) -> Self {
        AdaptiveSelector {
            mode: CachePadded::new(AtomicU8::new(initial as u8)),
            pending: AtomicU8::new(NO_PENDING),
            last_reads: AtomicU64::new(0),
            last_writes: AtomicU64::new(0),
            last_failures: AtomicU64::new(0),
        }
    }

    /// Current advisory mode (one Relaxed load; safe to call per read).
    #[inline]
    pub fn mode(&self) -> ReadMode {
        // ord: advisory routing hint; any stale value is still correct
        // (module docs), so no edge is required.
        ReadMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Feeds the selector a fresh view of the monotone totals and applies
    /// the decision rule. Callers amortize this (e.g. once per
    /// [`WINDOW_READS_PER_READER`] of their own reads); concurrent calls
    /// race benignly — a double-evaluated window just re-confirms or
    /// re-proposes the same decision.
    pub fn observe(&self, totals: ReadWindow) -> ReadMode {
        // Selector bookkeeping is advisory end to end: Relaxed everywhere.
        // Swaps keep the counters monotone per-field but windows may
        // interleave, which only perturbs the (heuristic) deltas.
        let dr = totals
            .reads
            // ord: Relaxed swap; advisory windowed delta (see above).
            .saturating_sub(self.last_reads.swap(totals.reads, Ordering::Relaxed));
        let dw = totals
            .writes
            // ord: Relaxed swap; advisory windowed delta (see above).
            .saturating_sub(self.last_writes.swap(totals.writes, Ordering::Relaxed));
        let df = totals.validation_failures.saturating_sub(
            self.last_failures
                // ord: Relaxed swap; advisory windowed delta (see above).
                .swap(totals.validation_failures, Ordering::Relaxed),
        );

        let decision = Self::decide(dr, dw, df);
        // ord: advisory mode word; any stale value routes correctly.
        let current = ReadMode::from_u8(self.mode.load(Ordering::Relaxed));
        if decision == current {
            // ord: advisory hysteresis word; races re-propose at worst.
            self.pending.store(NO_PENDING, Ordering::Relaxed);
            return current;
        }
        // ord: advisory hysteresis word; races re-propose at worst.
        if self.pending.load(Ordering::Relaxed) == decision as u8 {
            // Two consecutive windows agree: switch.
            // ord: advisory hysteresis word; races re-propose at worst.
            self.pending.store(NO_PENDING, Ordering::Relaxed);
            // ord: advisory mode word; readers may lag a window.
            self.mode.store(decision as u8, Ordering::Relaxed);
            return decision;
        }
        // ord: advisory hysteresis word; races re-propose at worst.
        self.pending.store(decision as u8, Ordering::Relaxed);
        current
    }

    /// The pure decision rule (exposed for unit tests).
    pub fn decide(reads: u64, writes: u64, failures: u64) -> ReadMode {
        if failures.saturating_mul(FAIL_RATE_DENOM) > reads {
            return ReadMode::Distributed;
        }
        if writes == 0 || reads >= writes.saturating_mul(READ_MOSTLY_RATIO) {
            return ReadMode::Optimistic;
        }
        if reads < writes.saturating_mul(WRITE_HEAVY_RATIO) {
            return ReadMode::Centralized;
        }
        ReadMode::Distributed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(reads: u64, writes: u64, failures: u64) -> ReadWindow {
        ReadWindow {
            reads,
            writes,
            validation_failures: failures,
        }
    }

    #[test]
    fn decision_rule_covers_the_regimes() {
        // Write-free and read-mostly → optimistic.
        assert_eq!(AdaptiveSelector::decide(1000, 0, 0), ReadMode::Optimistic);
        assert_eq!(AdaptiveSelector::decide(800, 100, 0), ReadMode::Optimistic);
        // Mixed → distributed.
        assert_eq!(AdaptiveSelector::decide(500, 100, 0), ReadMode::Distributed);
        // Write-heavy → centralized.
        assert_eq!(AdaptiveSelector::decide(100, 100, 0), ReadMode::Centralized);
        // Optimism thrashing (failures > 1/16 of reads) → distributed, even
        // if the mix looks read-mostly.
        assert_eq!(
            AdaptiveSelector::decide(1000, 10, 100),
            ReadMode::Distributed
        );
        // Degenerate window (no reads) must not divide by zero.
        assert_eq!(AdaptiveSelector::decide(0, 50, 0), ReadMode::Centralized);
    }

    #[test]
    fn hysteresis_needs_two_agreeing_windows() {
        let s = AdaptiveSelector::new(ReadMode::Distributed);
        assert_eq!(s.mode(), ReadMode::Distributed);

        // One read-mostly window proposes but does not switch.
        assert_eq!(s.observe(w(1000, 1, 0)), ReadMode::Distributed);
        assert_eq!(s.mode(), ReadMode::Distributed);
        // The second agreeing window switches.
        assert_eq!(s.observe(w(2000, 2, 0)), ReadMode::Optimistic);
        assert_eq!(s.mode(), ReadMode::Optimistic);
    }

    #[test]
    fn disagreeing_window_resets_the_proposal() {
        let s = AdaptiveSelector::new(ReadMode::Distributed);
        // Propose optimistic…
        s.observe(w(1000, 1, 0));
        // …then a write-heavy window proposes centralized instead: no switch
        // yet in either direction.
        assert_eq!(s.observe(w(1100, 101, 0)), ReadMode::Distributed);
        assert_eq!(s.mode(), ReadMode::Distributed);
        // And a window matching the current mode clears the proposal, so a
        // single later optimistic window still does not switch.
        s.observe(w(1600, 201, 0));
        assert_eq!(s.observe(w(2600, 202, 0)), ReadMode::Distributed);
        // Only the agreeing follow-up switches.
        assert_eq!(s.observe(w(3600, 203, 0)), ReadMode::Optimistic);
    }

    #[test]
    fn windows_are_differenced_not_cumulative() {
        let s = AdaptiveSelector::new(ReadMode::Optimistic);
        s.observe(w(10_000, 10, 0));
        // Totals keep growing, but the *delta* is write-heavy; two such
        // windows must drag the mode to centralized despite the cumulative
        // totals still looking read-mostly.
        s.observe(w(10_100, 110, 0));
        assert_eq!(s.observe(w(10_200, 210, 0)), ReadMode::Centralized);
    }
}
