//! FIFO ticket lock.
//!
//! §4.2 ("Liveness") of the PREP-UC paper: "An adversarial scheduler could
//! schedule threads such that one thread never completes this CAS
//! [reserving log entries]. Replacing the CAS with a fair lock would allow
//! for starvation-free update operations." This is that fair lock: strict
//! FIFO by ticket, so every combiner that requests log space eventually
//! gets it regardless of scheduling.

use crate::cell::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::Waiter;

/// A FIFO ticket lock (no protected data; callers serialize a code region).
// lock-level: 0 outermost: the cross-log reservation gate is taken
// before any per-replica or per-lane lock
#[derive(Debug, Default)]
pub struct TicketLock {
    next: CachePadded<AtomicU64>,
    serving: CachePadded<AtomicU64>,
}

impl TicketLock {
    /// Creates an unlocked ticket lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock; strictly FIFO among contenders.
    pub fn lock(&self) -> TicketGuard<'_> {
        // ord: AcqRel makes ticket draws totally ordered among contenders
        // (each RMW sees the previous one), which is the FIFO guarantee.
        let ticket = self.next.fetch_add(1, Ordering::AcqRel);
        let mut w = Waiter::new();
        // ord: Acquire pairs with the baton-pass AcqRel in Drop, ordering
        // this holder's section after the previous holder's writes.
        while self.serving.load(Ordering::Acquire) != ticket {
            w.wait();
        }
        TicketGuard { lock: self }
    }

    /// Attempts to acquire without waiting (succeeds only when nobody holds
    /// or waits).
    pub fn try_lock(&self) -> Option<TicketGuard<'_>> {
        // ord: Acquire pairs with the baton-pass in Drop; seeing serving == s
        // means the previous section's writes are visible before ours.
        let serving = self.serving.load(Ordering::Acquire);
        if self
            .next
            // ord: success AcqRel keeps the ticket draw in the same total
            // RMW order `lock` relies on; failure Acquire still orders the
            // (discarded) observation for the None path.
            .compare_exchange(serving, serving + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Some(TicketGuard { lock: self })
        } else {
            None
        }
    }
}

/// RAII guard for [`TicketLock`]; passes the baton on drop.
#[derive(Debug)]
pub struct TicketGuard<'a> {
    lock: &'a TicketLock,
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        // ord: the baton pass — Release publishes our critical section to
        // the next ticket holder's Acquire spin; Acquire keeps the pass
        // itself ordered after our reads.
        self.lock.serving.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn basic_exclusion_and_baton() {
        let l = TicketLock::new();
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        let g = l.try_lock().expect("free lock");
        drop(g);
    }

    #[test]
    fn fifo_order_is_respected() {
        // Thread k takes its ticket at a controlled time; completions must
        // come out in ticket order.
        const THREADS: usize = 4;
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let started = Arc::new(AtomicUsize::new(0));

        // Hold the lock while all contenders take tickets in a known order.
        let holder = lock.lock();
        let handles: Vec<_> = (0..THREADS)
            .map(|k| {
                let lock = Arc::clone(&lock);
                let order = Arc::clone(&order);
                let started = Arc::clone(&started);
                std::thread::spawn(move || {
                    // Serialize ticket acquisition so ticket number == k.
                    crate::spin_until(|| started.load(Ordering::Acquire) == k);
                    let g = lock.lock_announcing(&started, k);
                    order.lock().unwrap().push(k);
                    drop(g);
                })
            })
            .collect();
        crate::spin_until(|| started.load(Ordering::Acquire) == THREADS);
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "FIFO violated");
    }

    impl TicketLock {
        /// Test helper: take a ticket, then announce (so the next thread can
        /// take its ticket in order), then wait.
        fn lock_announcing(&self, started: &AtomicUsize, _k: usize) -> TicketGuard<'_> {
            let ticket = self.next.fetch_add(1, Ordering::AcqRel);
            started.fetch_add(1, Ordering::AcqRel);
            let mut w = Waiter::new();
            while self.serving.load(Ordering::Acquire) != ticket {
                w.wait();
            }
            TicketGuard { lock: self }
        }
    }

    #[test]
    fn counter_under_contention_is_exact() {
        const THREADS: usize = 6;
        const ITERS: usize = 500;

        struct Guarded {
            lock: TicketLock,
            value: std::cell::UnsafeCell<u64>,
        }
        // SAFETY: (test) `value` is only touched while `lock` is held.
        unsafe impl Sync for Guarded {}

        let shared = Arc::new(Guarded {
            lock: TicketLock::new(),
            value: std::cell::UnsafeCell::new(0),
        });
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let _g = shared.lock.lock();
                        // SAFETY: non-atomic RMW made safe only by the
                        // lock; any exclusion failure shows up as a lost
                        // increment.
                        unsafe {
                            let p = shared.value.get();
                            p.write(p.read() + 1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writer threads have been joined.
        assert_eq!(unsafe { *shared.value.get() }, (THREADS * ITERS) as u64);
    }
}
