//! Distributed readers-writer lock.
//!
//! This is the reader-writer lock NR actually describes (Calciu et al.,
//! ASPLOS 2017, §3): "a writer-preference variant of the distributed
//! reader-writer lock" with one reader indicator *per registered reader*,
//! each on its own cacheline. A reader acquires by writing **its own line**
//! and re-checking the writer flag — it never stores to a cacheline any
//! other reader touches, so read acquisition scales with no coherence
//! traffic between readers. The writer pays instead: it raises the writer
//! flag and then scans every reader line until all are free.
//!
//! Compare [`crate::RwSpinLock`], which funnels every reader through one
//! shared `fetch_add`/`fetch_sub` cacheline — fine for write-heavy replicas,
//! a bottleneck at 90%+ reads (the paper's headline workloads).
//!
//! Reader identity is a [`ReaderId`]:
//!
//! * [`ReaderId::Slot`]`(i)` — a registered reader that owns dedicated slot
//!   `i`. At most one thread may use a given slot at a time (in NR, the
//!   `ThreadToken` allocated at registration is that exclusive capability).
//! * [`ReaderId::Shared`] — an unregistered reader (diagnostics, the
//!   persistence thread's `with_replica` accesses, tests). All shared
//!   readers count on one overflow line; correct, but not contention-free.
//!
//! Memory-ordering note: reader acquire (mark own slot, then load the writer
//! word) and writer acquire (set the writer flag, then load every slot) form
//! a classic store-buffering pattern, so both sides use `SeqCst` for the
//! store→load pair. Either the reader's load sees the writer flag (reader
//! backs out) or the writer's scan sees the reader's mark (writer waits) —
//! mutual exclusion follows from the total order on `SeqCst` accesses.

use crate::cell::{AtomicU64, Ordering};
use std::cell::UnsafeCell;

use crossbeam_utils::CachePadded;

use crate::Waiter;

const WRITER: u64 = 1 << 63;
const WAITING_MASK: u64 = WRITER - 1;

/// Identity of a reader for slot-distributed locks ([`DistRwLock`]).
///
/// Locks without per-reader state ([`crate::RwSpinLock`],
/// [`crate::PhaseFairRwLock`]) accept and ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReaderId {
    /// A registered reader with exclusive use of dedicated slot `i`.
    Slot(usize),
    /// An unregistered reader; counts on the shared overflow line.
    Shared,
}

/// A distributed writer-preference readers-writer lock guarding a `T`.
///
/// Built with a fixed number of dedicated reader slots (one cacheline
/// each) plus one shared overflow line for [`ReaderId::Shared`] readers.
///
/// ```
/// use prep_sync::{DistRwLock, ReaderId};
/// let lock = DistRwLock::new(vec![1, 2, 3], 4);
/// {
///     let r0 = lock.read(ReaderId::Slot(0));
///     let r1 = lock.read(ReaderId::Slot(1)); // readers share
///     assert_eq!(r0.len() + r1.len(), 6);
/// }
/// lock.write().push(4);
/// assert_eq!(lock.read(ReaderId::Shared).len(), 4);
/// ```
// lock-level: 2 a ReplicaLock implementation — see the trait's level
pub struct DistRwLock<T> {
    /// Bit 63: a writer holds the lock. Low bits: writers waiting to
    /// acquire (readers defer to both — writer preference, as in
    /// [`crate::RwSpinLock`]). Readers only *load* this word; in a read-only
    /// phase its cacheline stays Shared in every reader's cache.
    writer: CachePadded<AtomicU64>,
    /// One line per dedicated reader slot, plus the shared overflow line at
    /// index `len - 1`. Nonzero = that slot's reader(s) hold the lock.
    /// Written only by the slot's owner; the writer merely scans.
    readers: Box<[CachePadded<AtomicU64>]>,
    data: UnsafeCell<T>,
}

// SAFETY: standard RwLock bounds — readers alias &T across threads, the
// writer gets exclusive &mut T, handoff ordered by the SeqCst protocol
// described in the module docs.
unsafe impl<T: Send> Send for DistRwLock<T> {}
unsafe impl<T: Send + Sync> Sync for DistRwLock<T> {}

impl<T> DistRwLock<T> {
    /// Creates an unlocked lock around `value` with `slots` dedicated
    /// reader slots (plus the shared overflow line).
    pub fn new(value: T, slots: usize) -> Self {
        DistRwLock {
            writer: CachePadded::new(AtomicU64::new(0)),
            readers: (0..slots + 1)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            data: UnsafeCell::new(value),
        }
    }

    /// Number of dedicated reader slots.
    pub fn reader_slots(&self) -> usize {
        self.readers.len() - 1
    }

    #[inline]
    fn slot(&self, id: ReaderId) -> &AtomicU64 {
        match id {
            ReaderId::Slot(i) => {
                debug_assert!(i < self.readers.len() - 1, "reader slot {i} out of range");
                &self.readers[i]
            }
            ReaderId::Shared => &self.readers[self.readers.len() - 1],
        }
    }

    /// Acquires the lock in read (shared) mode as `id`, blocking politely.
    ///
    /// For a dedicated slot this is the zero-contention path: one
    /// store + load on the reader's own line, one *load* of the writer
    /// word — no store to any cacheline shared with another reader.
    pub fn read(&self, id: ReaderId) -> DistReadGuard<'_, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = self.try_read(id) {
                return g;
            }
            w.wait();
        }
    }

    /// Attempts to acquire the lock in read mode without blocking.
    ///
    /// Fails while a writer holds *or waits for* the lock (writer
    /// preference: the NR combiner works on behalf of every thread on its
    /// node, so readers must not starve it).
    #[inline]
    pub fn try_read(&self, id: ReaderId) -> Option<DistReadGuard<'_, T>> {
        // ord: early-out only -- this load is NOT part of the SB protocol
        // (the mark + SeqCst recheck below is); Acquire is enough to see a
        // finishing writer's section before we skip the mark.
        if self.writer.load(Ordering::Acquire) != 0 {
            return None;
        }
        let slot = self.slot(id);
        // Mark our own line. fetch_add (not store) so the shared overflow
        // line counts its multiple concurrent readers; for a dedicated slot
        // it is an uncontended 0 → 1 transition on a line only we write.
        // ord: SeqCst store side of the store-buffering pair: mark-then-
        // check here vs flag-then-scan in `write`. With anything weaker,
        // both sides can read the other's old value and admit a reader
        // alongside an active writer.
        slot.fetch_add(1, Ordering::SeqCst);
        // Recheck: did a writer acquire between our first load and the
        // mark? (Waiting writers that have not acquired will scan and see
        // our mark — see module docs.)
        // ord: SeqCst load side of the SB pair (see mark above).
        if self.writer.load(Ordering::SeqCst) & WRITER != 0 {
            // ord: Release so the aborted attempt cannot leak past the
            // unmark; pairs with the writer's drain scan.
            slot.fetch_sub(1, Ordering::Release);
            return None;
        }
        Some(DistReadGuard { lock: self, id })
    }

    /// Acquires the lock in write (exclusive) mode, blocking politely:
    /// announce intent (so new readers hold off), win the writer flag, then
    /// scan every reader line until all are free.
    pub fn write(&self) -> DistWriteGuard<'_, T> {
        // ord: advisory waiting mark; the flag CAS below is the
        // synchronizing edge.
        self.writer.fetch_add(1, Ordering::Relaxed);
        let mut w = Waiter::new();
        loop {
            // ord: optimistic snapshot; the CAS re-validates.
            let s = self.writer.load(Ordering::Relaxed);
            if s & WRITER == 0 {
                debug_assert!(s & WAITING_MASK > 0, "lost our waiting mark");
                // Convert our waiting mark into the active-writer bit.
                if self
                    .writer
                    // ord: SeqCst store side of the SB pair (flag-then-scan
                    // vs the readers' mark-then-check); also Acquire-pairs
                    // with the previous writer's Release drop. Failure just
                    // loops.
                    .compare_exchange_weak(s, (s - 1) | WRITER, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
            }
            w.wait();
        }
        // Drain: wait for every reader line (dedicated + shared) to clear.
        // Readers that marked before our flag are visible here (SeqCst);
        // readers that marked after will see the flag and back out.
        for slot in self.readers.iter() {
            let mut w = Waiter::new();
            // ord: SeqCst load side of the SB pair -- must not be reordered
            // before the flag CAS, or a concurrent reader's mark could be
            // missed while it misses our flag; also Acquire-pairs with
            // reader unmark Releases so drained sections are visible.
            while slot.load(Ordering::SeqCst) != 0 {
                w.wait();
            }
        }
        DistWriteGuard { lock: self }
    }

    /// Number of writers currently waiting or holding (advisory, for
    /// tests).
    pub fn writer_word(&self) -> u64 {
        // ord: advisory, for tests.
        self.writer.load(Ordering::Relaxed)
    }

    /// Raw value of reader line `i` — dedicated slots `0..reader_slots()`,
    /// then the shared overflow line (advisory, for tests instrumenting
    /// which state words a path touches).
    pub fn reader_line(&self, i: usize) -> u64 {
        // ord: advisory, for tests.
        self.readers[i].load(Ordering::Relaxed)
    }

    /// Raw pointer to the protected data, for the optimistic (seqlock)
    /// read path. Dereferencing it without holding the lock is only sound
    /// under the [`crate::ReplicaLock::with_peek`] contract.
    pub(crate) fn data_ptr(&self) -> *const T {
        self.data.get()
    }

    /// Returns a mutable reference to the protected data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Shared-mode RAII guard for [`DistRwLock`].
pub struct DistReadGuard<'a, T> {
    lock: &'a DistRwLock<T>,
    id: ReaderId,
}

impl<T> std::ops::Deref for DistReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: shared guard held; no writer can be active.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for DistReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release publishes the read section to the writer's drain
        // scan.
        self.lock.slot(self.id).fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive-mode RAII guard for [`DistRwLock`].
pub struct DistWriteGuard<'a, T> {
    lock: &'a DistRwLock<T>,
}

impl<T> std::ops::Deref for DistWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: exclusive guard.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for DistWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for DistWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release publishes the write section to the next acquirer's
        // Acquire/SeqCst load of the writer word.
        self.lock.writer.fetch_and(!WRITER, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spin_until;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn readers_share_writer_excludes() {
        let lock = DistRwLock::new(7u64, 2);
        let r0 = lock.try_read(ReaderId::Slot(0)).unwrap();
        let r1 = lock.try_read(ReaderId::Slot(1)).unwrap();
        let rs = lock.try_read(ReaderId::Shared).unwrap();
        assert_eq!(*r0 + *r1 + *rs, 21);
        drop((r0, r1, rs));
        let mut w = lock.write();
        *w = 8;
        assert!(lock.try_read(ReaderId::Slot(0)).is_none());
        drop(w);
        assert_eq!(*lock.read(ReaderId::Slot(0)), 8);
    }

    #[test]
    fn shared_line_counts_multiple_readers() {
        let lock = DistRwLock::new((), 2);
        let a = lock.try_read(ReaderId::Shared).unwrap();
        let b = lock.try_read(ReaderId::Shared).unwrap();
        assert_eq!(lock.reader_line(2), 2);
        drop(a);
        assert_eq!(lock.reader_line(2), 1);
        drop(b);
        assert_eq!(lock.reader_line(2), 0);
    }

    /// The tentpole invariant: a dedicated-slot read acquire + release
    /// stores to **no state word shared with another reader** — only its
    /// own line changes; the writer word and every other reader line are
    /// bit-identical throughout.
    #[test]
    fn slot_read_stores_only_to_its_own_line() {
        let lock = DistRwLock::new(0u64, 4);
        // Another reader holds slot 1 and the shared line — their words
        // must not change while slot 2 acquires and releases.
        let _other = lock.read(ReaderId::Slot(1));
        let _shared = lock.read(ReaderId::Shared);
        let before: Vec<u64> = (0..5).map(|i| lock.reader_line(i)).collect();
        let writer_before = lock.writer_word();

        let g = lock.read(ReaderId::Slot(2));
        assert_eq!(lock.reader_line(2), before[2] + 1, "own line marked");
        for i in [0usize, 1, 3, 4] {
            assert_eq!(lock.reader_line(i), before[i], "foreign line {i} written");
        }
        assert_eq!(lock.writer_word(), writer_before, "writer word written");
        drop(g);
        for (i, &b) in before.iter().enumerate() {
            assert_eq!(lock.reader_line(i), b, "line {i} not restored");
        }
        assert_eq!(lock.writer_word(), writer_before);
    }

    /// Interleaving: writer announces intent while a reader holds; new
    /// readers (dedicated and shared) must defer until the writer is done
    /// (writer preference), and the writer must not enter while the old
    /// reader holds (mutual exclusion).
    #[test]
    fn writer_preference_blocks_new_readers() {
        let lock = Arc::new(DistRwLock::new(0u64, 2));
        let r = lock.read(ReaderId::Slot(0));
        let l2 = Arc::clone(&lock);
        let writer = thread::spawn(move || {
            *l2.write() = 1;
        });
        // Step the interleaving to "writer waiting": intent announced, not
        // yet acquired (the reader still holds).
        spin_until(|| lock.writer_word() != 0);
        assert!(lock.try_read(ReaderId::Slot(1)).is_none(), "slot reader");
        assert!(lock.try_read(ReaderId::Shared).is_none(), "shared reader");
        assert_eq!(*r, 0, "writer entered while a reader held");
        drop(r);
        writer.join().unwrap();
        assert_eq!(*lock.read(ReaderId::Slot(0)), 1);
    }

    /// Interleaving: the writer flag is up and the writer is draining; a
    /// reader that races its slot-mark against the flag must back out, and
    /// the writer must observe the backout (no lost wakeup: the drain scan
    /// terminates).
    #[test]
    fn racing_reader_backs_out_and_writer_drains() {
        let lock = Arc::new(DistRwLock::new(0u64, 2));
        let stop = Arc::new(AtomicBool::new(false));
        let l2 = Arc::clone(&lock);
        let s2 = Arc::clone(&stop);
        // Reader thread hammers acquire/release on its own slot.
        let reader = thread::spawn(move || {
            let mut reads = 0u64;
            while !s2.load(Ordering::Relaxed) {
                let g = l2.read(ReaderId::Slot(0));
                reads += 1;
                drop(g);
            }
            reads
        });
        // Writer thread repeatedly acquires through the churning reader —
        // every acquisition must complete (drain terminates) and be
        // exclusive.
        for i in 0..200u64 {
            let mut g = lock.write();
            assert_eq!(*g, i, "writer saw a torn or lost update");
            *g = i + 1;
        }
        stop.store(true, Ordering::Relaxed);
        let reads = reader.join().unwrap();
        assert!(reads > 0, "reader never got through");
        assert_eq!(*lock.read(ReaderId::Shared), 200);
    }

    /// Mutual exclusion under full churn: writers keep a two-word invariant
    /// that any reader overlapping a writer would see torn.
    #[test]
    fn no_torn_reads_under_churn() {
        const WRITERS: usize = 2;
        const READERS: usize = 3;
        let lock = Arc::new(DistRwLock::new((0u64, 0u64), READERS));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let mut g = lock.write();
                        let v = g.0 + 1;
                        g.0 = v;
                        g.1 = v;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..READERS)
            .map(|i| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..2000 {
                        let g = lock.read(ReaderId::Slot(i));
                        assert_eq!(g.0, g.1, "torn read through DistRwLock");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    /// No lost wakeups in either direction: alternating phases where a
    /// writer waits on readers and readers wait on the writer, many times.
    #[test]
    fn alternating_phases_never_hang() {
        let lock = Arc::new(DistRwLock::new(0u64, 1));
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || {
            for _ in 0..500 {
                let g = l2.read(ReaderId::Slot(0));
                let v = *g;
                drop(g);
                let mut w = l2.write();
                assert!(*w >= v);
                *w += 1;
            }
        });
        for _ in 0..500 {
            let g = lock.read(ReaderId::Shared);
            let v = *g;
            drop(g);
            let mut w = lock.write();
            assert!(*w >= v);
            *w += 1;
        }
        t.join().unwrap();
        let Ok(lock) = Arc::try_unwrap(lock) else {
            panic!("all clones joined");
        };
        assert_eq!(lock.into_inner(), 1000);
    }

    #[test]
    fn guards_are_raii_exact() {
        let lock = DistRwLock::new((), 1);
        {
            let _g = lock.read(ReaderId::Slot(0));
            assert_eq!(lock.reader_line(0), 1);
        }
        assert_eq!(lock.reader_line(0), 0);
        {
            let _w = lock.write();
            assert_eq!(lock.writer_word(), WRITER);
        }
        assert_eq!(lock.writer_word(), 0);
    }
}
