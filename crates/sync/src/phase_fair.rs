//! Phase-fair reader-writer lock (starvation-free).
//!
//! §4.2 ("Liveness") of the PREP-UC paper notes that swapping the replica's
//! reader-writer lock for a *starvation-free* one yields starvation-free
//! read-only operations. This module provides that drop-in: Brandenburg &
//! Anderson's ticket-based phase-fair lock (PF-T). Its guarantees:
//!
//! * writers are FIFO-ordered by ticket;
//! * a reader waits for at most **one** writer phase before entering;
//! * readers that arrive during a writer phase all enter together when the
//!   phase ends (reader phases and writer phases alternate under contention).
//!
//! State: `rin`/`rout` count reader entries/exits in the high bits; the low
//! byte of `rin` carries the current writer's presence flag and phase bit.
//! `win`/`wout` are the writer ticket dispenser and serving counter.

use crate::cell::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;

use crossbeam_utils::CachePadded;

use crate::Waiter;

/// Reader tick increment (low byte reserved for writer flags).
const RINC: usize = 0x100;
/// Mask of the writer-flag byte within `rin`.
const WBITS: usize = 0xff;
/// Writer-present flag.
const PRES: usize = 0x2;
/// Writer phase bit (alternates with the writer ticket).
const PHID: usize = 0x1;

/// A phase-fair (starvation-free) reader-writer lock guarding a `T`.
///
/// ```
/// use prep_sync::PhaseFairRwLock;
/// let lock = PhaseFairRwLock::new(String::from("a"));
/// lock.write().push('b');
/// assert_eq!(&*lock.read(), "ab");
/// ```
// lock-level: 2 a ReplicaLock implementation — see the trait's level
#[derive(Debug)]
pub struct PhaseFairRwLock<T> {
    rin: CachePadded<AtomicUsize>,
    rout: CachePadded<AtomicUsize>,
    win: CachePadded<AtomicUsize>,
    wout: CachePadded<AtomicUsize>,
    data: UnsafeCell<T>,
}

// SAFETY: standard RwLock bounds; the protocol below provides exclusion.
unsafe impl<T: Send> Send for PhaseFairRwLock<T> {}
unsafe impl<T: Send + Sync> Sync for PhaseFairRwLock<T> {}

impl<T> PhaseFairRwLock<T> {
    /// Creates an unlocked lock around `value`.
    pub fn new(value: T) -> Self {
        PhaseFairRwLock {
            rin: CachePadded::new(AtomicUsize::new(0)),
            rout: CachePadded::new(AtomicUsize::new(0)),
            win: CachePadded::new(AtomicUsize::new(0)),
            wout: CachePadded::new(AtomicUsize::new(0)),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock in read mode; waits for at most one writer phase.
    pub fn read(&self) -> PhaseFairReadGuard<'_, T> {
        // ord: AcqRel — Release makes our entry visible to the writer's
        // reader snapshot; Acquire orders our reads after the writer whose
        // cleared flag byte we may observe here.
        let w = self.rin.fetch_add(RINC, Ordering::AcqRel) & WBITS;
        if w != 0 {
            // A writer is present: wait until the flag byte changes, i.e. the
            // writer finished (byte cleared) or a *different* writer took
            // over (phase bit flipped — we may then enter, having arrived
            // before it sampled `rin`). Either way: at most one phase.
            let mut waiter = Waiter::new();
            // ord: Acquire pairs with the writer drop's flag clear — once
            // the byte changes, the finished writer's section is visible.
            while self.rin.load(Ordering::Acquire) & WBITS == w {
                waiter.wait();
            }
        }
        PhaseFairReadGuard { lock: self }
    }

    /// Acquires the lock in write mode; writers are FIFO by ticket.
    pub fn write(&self) -> PhaseFairWriteGuard<'_, T> {
        // ord: AcqRel totally orders ticket draws (writer FIFO).
        let ticket = self.win.fetch_add(1, Ordering::AcqRel);
        let mut waiter = Waiter::new();
        // Serialize writers.
        // ord: Acquire pairs with the previous writer's baton pass in Drop.
        while self.wout.load(Ordering::Acquire) != ticket {
            waiter.wait();
        }
        // Publish presence + phase; snapshot readers that arrived before us.
        let flags = PRES | (ticket & PHID);
        // ord: AcqRel — Release publishes the presence flag readers spin on;
        // Acquire orders our snapshot after the entries of readers we must
        // wait out.
        let arrived = self.rin.fetch_add(flags, Ordering::AcqRel) & !WBITS;
        // Wait for those readers to drain (later readers block on the flag
        // byte and never increment rout until they run).
        waiter.reset();
        // ord: Acquire pairs with reader-drop rout bumps — when the counts
        // match, every admitted reader's section happened-before ours.
        while self.rout.load(Ordering::Acquire) != arrived {
            waiter.wait();
        }
        PhaseFairWriteGuard { lock: self }
    }

    /// Raw pointer to the protected data, for the optimistic (seqlock)
    /// read path. Dereferencing it without holding the lock is only sound
    /// under the [`crate::ReplicaLock::with_peek`] contract.
    pub(crate) fn data_ptr(&self) -> *const T {
        self.data.get()
    }

    /// Returns a mutable reference to the protected data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Shared-mode RAII guard for [`PhaseFairRwLock`].
#[derive(Debug)]
pub struct PhaseFairReadGuard<'a, T> {
    lock: &'a PhaseFairRwLock<T>,
}

impl<T> std::ops::Deref for PhaseFairReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: shared guard held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for PhaseFairReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // ord: Release ends the read section for the writer's rout spin;
        // AcqRel (not plain Release) keeps exits totally ordered so the
        // drain count can never be observed out of step.
        self.lock.rout.fetch_add(RINC, Ordering::AcqRel);
    }
}

/// Exclusive-mode RAII guard for [`PhaseFairRwLock`].
#[derive(Debug)]
pub struct PhaseFairWriteGuard<'a, T> {
    lock: &'a PhaseFairRwLock<T>,
}

impl<T> std::ops::Deref for PhaseFairWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: exclusive guard held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for PhaseFairWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard held.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for PhaseFairWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Clear presence/phase flags so waiting readers proceed, then pass
        // the ticket baton to the next writer.
        // ord: Release publishes the write section to readers spinning on
        // the flag byte; Acquire orders the clear after our writes.
        self.lock.rin.fetch_and(!WBITS, Ordering::AcqRel);
        // ord: baton pass to the next writer's wout spin (Release side);
        // AcqRel keeps it after the flag clear above in the RMW order.
        self.lock.wout.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn exclusive_writes_are_not_lost() {
        const THREADS: usize = 8;
        const ITERS: usize = 500;
        let lock = Arc::new(PhaseFairRwLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        let mut g = lock.write();
                        *g += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), THREADS * ITERS);
    }

    #[test]
    fn readers_never_see_torn_pairs() {
        let lock = Arc::new(PhaseFairRwLock::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let wl = Arc::clone(&lock);
        let ws = Arc::clone(&stop);
        let writer = thread::spawn(move || {
            let mut i = 0u64;
            while !ws.load(Ordering::Relaxed) {
                let mut g = wl.write();
                g.0 = i;
                g.1 = i;
                i += 1;
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..2000 {
                        let g = lock.read();
                        assert_eq!(g.0, g.1, "torn read through PhaseFairRwLock");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn reader_makes_progress_under_writer_stream() {
        // Starvation-freedom smoke test: with a continuous stream of writers,
        // a reader must still complete a bounded batch of acquisitions.
        let lock = Arc::new(PhaseFairRwLock::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        // The reader must finish even while writers hammer the lock.
        for _ in 0..500 {
            let _ = *lock.read();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn reads_and_writes_interleave_correctly() {
        let lock = Arc::new(PhaseFairRwLock::new(Vec::<u32>::new()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for i in 0..200 {
                        if i % 3 == 0 {
                            lock.write().push(t);
                        } else {
                            let g = lock.read();
                            // Length only ever grows.
                            let a = g.len();
                            let b = g.len();
                            assert!(b >= a);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads * ceil(200/3) pushes each.
        assert_eq!(lock.read().len(), 4 * 67);
    }
}
