//! The instrumentation seam: atomics, fences, and peekable plain data.
//!
//! Every primitive in this crate (and the `prep-nr` log built on it) does
//! its shared-memory traffic through this module instead of naming
//! `std::sync::atomic` directly. In a normal build the module is nothing
//! but re-exports — the types *are* `std`'s types, verified by the
//! compile-time assertions below, so the seam is zero-cost by
//! construction. Under `RUSTFLAGS="--cfg prep_mc"` the same names resolve
//! to `prep-mc`'s instrumented cells, and every load, store, RMW, and
//! fence becomes a scheduling + value-choice point for the model checker
//! (see `crates/mc` and the "What prep-mc proves" section of DESIGN.md).
//!
//! [`PeekCell`] is the plain-data counterpart: a bare `UnsafeCell` in
//! normal builds, a happens-before race-detected location under the
//! checker. Optimistic readers use [`PeekCell::read_racy`] and must
//! discard the value unless their validation bracket (e.g.
//! [`crate::SeqVersion::validate`]) proves no write overlapped.

#[cfg(prep_mc)]
pub use prep_mc::cell::{
    compiler_fence, fence, label, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, PeekCell, Peeked,
};

pub use std::sync::atomic::Ordering;

#[cfg(not(prep_mc))]
pub use std::sync::atomic::{compiler_fence, fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

#[cfg(not(prep_mc))]
mod plain {
    use std::cell::UnsafeCell;

    /// A peeked-read result from [`PeekCell::read_racy`].
    #[derive(Clone, Copy, Debug)]
    pub struct Peeked<T> {
        /// The value read; possibly stale or torn-equivalent when a write
        /// overlapped — callers must validate before trusting it.
        pub value: T,
        /// Whether a concurrent write was detected. Plain builds cannot
        /// detect this; always `false` here (the checker build can).
        pub racy: bool,
    }

    /// Plain shared data behind the instrumentation seam.
    ///
    /// In this (normal) build it is a transparent `UnsafeCell<T>`: reads
    /// and writes compile to ordinary memory accesses and the `unsafe`
    /// contracts carry the synchronization obligations, exactly as if the
    /// caller had used `UnsafeCell` directly. The checker build swaps in
    /// an instrumented cell that *detects* contract violations instead.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct PeekCell<T> {
        v: UnsafeCell<T>,
    }

    // SAFETY: the cell adds no synchronization; callers order all access
    // (that is the `unsafe` contract on read/write), so sharing the cell
    // is as sound as sharing the UnsafeCell it wraps.
    unsafe impl<T: Send> Send for PeekCell<T> {}
    unsafe impl<T: Send> Sync for PeekCell<T> {}

    impl<T: Copy> PeekCell<T> {
        /// Creates a cell holding `v`.
        pub const fn new(v: T) -> Self {
            PeekCell {
                v: UnsafeCell::new(v),
            }
        }

        /// Reads the value.
        ///
        /// # Safety
        /// No thread may write the cell concurrently.
        #[inline]
        pub unsafe fn read(&self) -> T {
            // SAFETY: caller guarantees no concurrent writer.
            unsafe { *self.v.get() }
        }

        /// Reads the value, consenting to concurrent writes (seqlock-style
        /// optimistic read). The caller must discard `value` unless its
        /// validation protocol proves no write overlapped.
        ///
        /// # Safety
        /// `T: Copy` keeps the read free of drop hazards; the surrounding
        /// validation protocol carries the data-race obligation.
        #[inline]
        pub unsafe fn read_racy(&self) -> Peeked<T> {
            Peeked {
                // SAFETY: per the contract above.
                value: unsafe { *self.v.get() },
                racy: false,
            }
        }

        /// Writes the value.
        ///
        /// # Safety
        /// No other thread may read (except via `read_racy`) or write the
        /// cell concurrently.
        #[inline]
        pub unsafe fn write(&self, val: T) {
            // SAFETY: caller guarantees exclusivity per the contract above.
            unsafe { *self.v.get() = val }
        }

        /// Returns a mutable reference to the value.
        #[inline]
        pub fn get_mut(&mut self) -> &mut T {
            self.v.get_mut()
        }
    }

    /// Names a cell in model-checker traces. A no-op in normal builds.
    #[inline]
    pub fn label<T>(_cell: &T, _name: &'static str) {}
}

#[cfg(not(prep_mc))]
pub use plain::{label, PeekCell, Peeked};

// Zero-cost guard: in normal builds the atomic seam types must *be*
// `std::sync::atomic`'s types — not wrappers, not lookalikes. An identity
// closure only coerces to `fn(A) -> B` when `A` and `B` unify, so each
// line fails to compile if the alias ever drifts. (PeekCell is checked by
// layout instead: it is repr(transparent) over UnsafeCell.)
#[cfg(not(prep_mc))]
const _: () = {
    const _A: fn(std::sync::atomic::AtomicBool) -> AtomicBool = |x| x;
    const _B: fn(std::sync::atomic::AtomicU8) -> AtomicU8 = |x| x;
    const _C: fn(std::sync::atomic::AtomicU64) -> AtomicU64 = |x| x;
    const _D: fn(std::sync::atomic::AtomicUsize) -> AtomicUsize = |x| x;
    const _F: fn(std::sync::atomic::Ordering) = std::sync::atomic::fence;
    const _G: fn(std::sync::atomic::Ordering) = fence;
    assert!(
        std::mem::size_of::<PeekCell<u64>>() == std::mem::size_of::<u64>(),
        "PeekCell must stay layout-transparent"
    );
};
