//! Seqlock-style replica version cell — the optimistic read protocol's
//! canonical release/acquire publish pair.
//!
//! PREP-UC's read-only operations do not need the replica lock for
//! *correctness of the value they return* — they need to know whether a
//! combiner mutated the replica while they were reading it. [`SeqVersion`]
//! encodes that as a single monotonically increasing 64-bit version:
//!
//! * **even** — the replica is stable (no write in progress);
//! * **odd**  — a writer is mid-apply; any concurrent read is suspect.
//!
//! The combiner (already exclusive via the replica's write lock) brackets
//! every mutation with [`write_begin`](SeqVersion::write_begin) /
//! [`write_end`](SeqVersion::write_end). An optimistic reader snapshots the
//! version with [`read_begin`](SeqVersion::read_begin), runs its read-only
//! operation against the replica *without acquiring any lock*, then calls
//! [`validate`](SeqVersion::validate): if the version is unchanged, no
//! writer overlapped the read and the result is a consistent snapshot; if
//! it changed, the result is discarded and the reader retries or falls back
//! to the slot path.
//!
//! The reader side performs **only loads** — zero atomic RMWs and zero
//! stores to any cacheline, shared or otherwise. That is the whole point:
//! the read fast path leaves every coherence line in Shared state, so read
//! throughput scales with cores instead of serializing on a lock word
//! (`BENCH_readscale.json` measures exactly this).
//!
//! Memory-ordering recipe (Boehm, "Can seqlocks get along with programming
//! language memory models?", MSPC 2012 — the same shape crossbeam's
//! `SeqLock` uses):
//!
//! ```text
//! writer                              reader
//! ------                              ------
//! store v+1 (Relaxed)   [odd]         v1 = load (Acquire)
//! fence(Release)                      if v1 odd: bail
//! ... mutate replica ...              ... read replica ...
//! store v+2 (Release)   [even]        fence(Acquire)
//!                                     v2 = load (Relaxed)
//!                                     valid ⇔ v1 == v2
//! ```
//!
//! The `Release` fence keeps the odd store visible before any replica
//! mutation; the even store's `Release` keeps every mutation visible before
//! the version returns to even; the reader's `Acquire` fence keeps its
//! replica reads from sinking below the re-validation load. Either the
//! reader's `v2` sees a bump (read discarded) or both loads bracket a
//! quiescent period (read valid).

use crate::cell::{fence, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// A seqlock-style version word guarding optimistic reads of a replica.
///
/// Writers must already be mutually exclusive (in NR the combiner holds the
/// replica's write lock); the cell only publishes *whether* a write
/// overlapped a lock-free read, it does not arbitrate between writers.
///
/// ```
/// use prep_sync::SeqVersion;
/// let v = SeqVersion::new();
/// let snap = v.read_begin().expect("stable");
/// // ... lock-free read of the protected data ...
/// assert!(v.validate(snap)); // no writer ran: the read is consistent
///
/// v.write_begin();
/// assert!(v.read_begin().is_none()); // mid-write: readers bail immediately
/// v.write_end();
/// assert!(!v.validate(snap)); // a write completed: old snapshots invalid
/// ```
#[derive(Debug)]
pub struct SeqVersion {
    /// Even = stable, odd = write in progress. Padded: this word is loaded
    /// by every optimistic reader and must not false-share with anything a
    /// writer scribbles on.
    version: CachePadded<AtomicU64>,
}

impl SeqVersion {
    /// Creates a cell at version 0 (stable).
    pub const fn new() -> Self {
        SeqVersion {
            version: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Marks a write in progress (even → odd). Caller must hold exclusive
    /// access to the protected data for the whole `write_begin`/`write_end`
    /// bracket.
    #[inline]
    pub fn write_begin(&self) {
        // ord: Relaxed store + Release fence, the writer-begin half of the
        // seqlock recipe (module docs): the fence keeps this odd store
        // visible before any subsequent replica mutation, so a reader that
        // overlaps a mutation cannot still observe the old even version.
        // The store itself is single-writer (callers are exclusive).
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 0, "write_begin while already writing");
        // ord: Relaxed store is sound because the following Release fence
        // orders it before every subsequent mutation (single writer).
        self.version.store(v + 1, Ordering::Relaxed);
        // ord: Release fence orders the odd store above before every
        // replica mutation that follows in the bracket; pairs with the
        // reader-side Acquire (read_begin's load / validate's fence).
        fence(Ordering::Release);
    }

    /// Marks the write complete (odd → even), publishing the mutation.
    #[inline]
    pub fn write_end(&self) {
        // ord: Release store, the canonical publish: every replica mutation
        // in the bracket happens-before the version's return to even, so a
        // reader whose validate observes this even value also observes the
        // fully-applied replica.
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 1, "write_end without write_begin");
        // ord: Release publishes every mutation in the bracket before the
        // version returns to even (pairs with read_begin's Acquire).
        self.version.store(v + 1, Ordering::Release);
    }

    /// Reader side, step 1: snapshot the version. Returns `None` if a write
    /// is in progress (odd) — the caller should retry or fall back.
    #[inline]
    pub fn read_begin(&self) -> Option<u64> {
        // ord: Acquire pairs with write_end's Release store: a reader that
        // sees version v even also sees every mutation published by the
        // write that produced v, and its subsequent replica loads cannot
        // float above this load.
        let v = self.version.load(Ordering::Acquire);
        if v & 1 == 0 {
            Some(v)
        } else {
            None
        }
    }

    /// Reader side, step 2: after reading the protected data, returns true
    /// iff no write overlapped since [`read_begin`](Self::read_begin)
    /// returned `snapshot` — i.e. the lock-free read was a consistent
    /// snapshot and may be used.
    #[inline]
    #[must_use = "an invalid optimistic read must be discarded"]
    pub fn validate(&self, snapshot: u64) -> bool {
        // ord: Acquire fence + Relaxed load, the reader-end half of the
        // seqlock recipe (module docs): the fence keeps the caller's replica
        // loads from sinking below this re-validation load, so version
        // equality really does bracket the data reads.
        fence(Ordering::Acquire);
        // ord: Relaxed load is sound because the preceding Acquire fence
        // orders it after the caller's bracketed data reads.
        self.version.load(Ordering::Relaxed) == snapshot
    }

    /// Current raw version (advisory: tests and the adaptive selector).
    #[inline]
    pub fn current(&self) -> u64 {
        // ord: advisory snapshot; readers of the protected data use
        // read_begin/validate instead.
        self.version.load(Ordering::Relaxed)
    }

    /// Number of completed write brackets (advisory: the adaptive selector's
    /// write-rate estimate).
    #[inline]
    pub fn writes(&self) -> u64 {
        self.current() >> 1
    }
}

impl Default for SeqVersion {
    fn default() -> Self {
        SeqVersion::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn protocol_steps() {
        let v = SeqVersion::new();
        assert_eq!(v.current(), 0);
        let s = v.read_begin().unwrap();
        assert!(v.validate(s));

        v.write_begin();
        assert_eq!(v.current(), 1);
        assert!(v.read_begin().is_none(), "odd version must stall readers");
        assert!(!v.validate(s), "overlapping write must invalidate");
        v.write_end();
        assert_eq!(v.current(), 2);
        assert_eq!(v.writes(), 1);

        assert!(!v.validate(s), "completed write must invalidate old snaps");
        let s2 = v.read_begin().unwrap();
        assert!(v.validate(s2));
    }

    /// The reader side is pure loads: the version word is bit-identical
    /// after any number of read_begin/validate calls. (The zero-RMW /
    /// zero-store claim for the whole NR fast path is asserted end-to-end
    /// in prep-nr's `optimistic_read_makes_no_shared_stores`.)
    #[test]
    fn reads_never_store() {
        let v = SeqVersion::new();
        v.write_begin();
        v.write_end();
        let before = v.current();
        for _ in 0..1000 {
            let s = v.read_begin().unwrap();
            assert!(v.validate(s));
        }
        assert_eq!(v.current(), before, "a read mutated the version word");
    }

    /// Torn-read detection under churn: a writer keeps a two-word invariant
    /// inside the bracket; readers accept a snapshot only when validation
    /// passes, and every accepted snapshot must be consistent.
    #[test]
    fn validation_rejects_torn_reads() {
        let v = Arc::new(SeqVersion::new());
        let data = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let (v, data, stop) = (Arc::clone(&v), Arc::clone(&data), Arc::clone(&stop));
            thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    v.write_begin();
                    // ord: test payload; the SeqVersion bracket provides the
                    // publish edges under test.
                    data.0.store(n, Ordering::Relaxed);
                    data.1.store(n, Ordering::Relaxed);
                    v.write_end();
                }
            })
        };

        // On one CPU the writer can sit descheduled mid-bracket (version
        // odd) for a whole scheduling quantum; yield instead of burning
        // the loop on `None`, and run until enough reads validated.
        let mut accepted = 0u64;
        let mut attempts = 0u64;
        while accepted < 1_000 && attempts < 5_000_000 {
            attempts += 1;
            if let Some(s) = v.read_begin() {
                // ord: test payload reads; bracketed by read_begin/validate.
                let a = data.0.load(Ordering::Relaxed);
                let b = data.1.load(Ordering::Relaxed);
                if v.validate(s) {
                    accepted += 1;
                    assert_eq!(a, b, "validated read observed a torn pair");
                }
            } else {
                thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert!(accepted > 0, "no read ever validated");
    }
}
