//! The lock interface NR replicas are guarded by.
//!
//! NR's per-replica reader-writer lock comes in three flavors, selected by
//! the construction's fairness mode:
//!
//! * [`DistRwLock`] — distributed per-reader slots, the NR §3 lock; the
//!   throughput default for read-heavy workloads;
//! * [`RwSpinLock`] — the centralized writer-preference lock; kept as the
//!   ablation baseline the distributed lock is measured against;
//! * [`PhaseFairRwLock`] — the §4.2 starvation-free variant.
//!
//! [`ReplicaLock`] abstracts over them so the replica can hold a trait
//! object. The interface is closure-based (`with_read`/`with_write` taking
//! `&mut dyn FnMut`) rather than guard-based: guards would need generic
//! associated types, which rules out `dyn` dispatch. Callers that want a
//! return value layer `FnOnce`+`Option` on top (see `prep-nr`'s
//! `Replica::read_with`).
//!
//! Locks without per-reader state accept the [`ReaderId`] and ignore it, so
//! the universal construction plumbs reader identity unconditionally and
//! the lock decides whether it pays off.

use crate::{DistRwLock, PhaseFairRwLock, ReaderId, RwSpinLock};

/// A readers-writer lock suitable for guarding an NR replica.
// lock-level: 2 replica data locks nest inside the gate (0) and the
// combiner election (1); nothing ranked is acquired under them
pub trait ReplicaLock<T>: Send + Sync {
    /// Runs `f` with shared access, acquiring as reader `id`.
    fn with_read(&self, id: ReaderId, f: &mut dyn FnMut(&T));

    /// Runs `f` with exclusive access.
    fn with_write(&self, f: &mut dyn FnMut(&mut T));

    /// Number of dedicated reader slots, `0` for centralized locks (every
    /// [`ReaderId`] is then equivalent to [`ReaderId::Shared`]).
    fn reader_slots(&self) -> usize {
        0
    }

    /// Snapshot of every lock state word (advisory, for tests asserting
    /// that a path made no store to lock state). Empty when the lock does
    /// not expose its words.
    fn state_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Runs `f` against the protected data **without acquiring the lock** —
    /// the optimistic read path. Performs no atomic RMW and no store to any
    /// lock state word.
    ///
    /// # Safety
    ///
    /// The shared reference handed to `f` is unsynchronized: a writer may
    /// mutate the data concurrently. The caller must bracket the call with
    /// an external detection protocol (in NR, [`crate::SeqVersion`]
    /// `read_begin`/`validate` around every `with_peek`) and **discard
    /// everything `f` observed** when the bracket reports an overlapping
    /// write. `f` must tolerate reading torn/inconsistent values without
    /// faulting: it must not follow data-dependent pointers it frees or
    /// trust invariants for memory safety (plain reads of possibly-stale
    /// plain data only). This is the standard seqlock contract.
    unsafe fn with_peek(&self, f: &mut dyn FnMut(&T));
}

impl<T: Send + Sync> ReplicaLock<T> for DistRwLock<T> {
    // SAFETY: forwards the trait method's seqlock contract — the caller
    // brackets this call with an external write-detection protocol and
    // discards torn observations.
    unsafe fn with_peek(&self, f: &mut dyn FnMut(&T)) {
        // SAFETY: the caller upholds the seqlock contract documented on the
        // trait method; we only materialize the unsynchronized shared
        // reference it promises to treat as suspect.
        f(unsafe { &*self.data_ptr() });
    }

    fn with_read(&self, id: ReaderId, f: &mut dyn FnMut(&T)) {
        f(&self.read(id));
    }

    fn with_write(&self, f: &mut dyn FnMut(&mut T)) {
        f(&mut self.write());
    }

    fn reader_slots(&self) -> usize {
        DistRwLock::reader_slots(self)
    }

    fn state_words(&self) -> Vec<u64> {
        let mut words = vec![self.writer_word()];
        words.extend((0..=DistRwLock::reader_slots(self)).map(|i| self.reader_line(i)));
        words
    }
}

impl<T: Send + Sync> ReplicaLock<T> for RwSpinLock<T> {
    // SAFETY: forwards the trait method's seqlock contract — the caller
    // brackets this call with an external write-detection protocol and
    // discards torn observations.
    unsafe fn with_peek(&self, f: &mut dyn FnMut(&T)) {
        // SAFETY: the caller upholds the seqlock contract documented on the
        // trait method; we only materialize the unsynchronized shared
        // reference it promises to treat as suspect.
        f(unsafe { &*self.data_ptr() });
    }

    fn with_read(&self, _id: ReaderId, f: &mut dyn FnMut(&T)) {
        f(&self.read());
    }

    fn with_write(&self, f: &mut dyn FnMut(&mut T)) {
        f(&mut self.write());
    }
}

impl<T: Send + Sync> ReplicaLock<T> for PhaseFairRwLock<T> {
    // SAFETY: forwards the trait method's seqlock contract — the caller
    // brackets this call with an external write-detection protocol and
    // discards torn observations.
    unsafe fn with_peek(&self, f: &mut dyn FnMut(&T)) {
        // SAFETY: the caller upholds the seqlock contract documented on the
        // trait method; we only materialize the unsynchronized shared
        // reference it promises to treat as suspect.
        f(unsafe { &*self.data_ptr() });
    }

    fn with_read(&self, _id: ReaderId, f: &mut dyn FnMut(&T)) {
        f(&self.read());
    }

    fn with_write(&self, f: &mut dyn FnMut(&mut T)) {
        f(&mut self.write());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(lock: &dyn ReplicaLock<u64>) {
        lock.with_write(&mut |v| *v += 5);
        let mut seen = 0;
        lock.with_read(ReaderId::Shared, &mut |v| seen = *v);
        assert_eq!(seen, 5);
        lock.with_read(ReaderId::Slot(0), &mut |v| seen = *v + 1);
        assert_eq!(seen, 6);
        // SAFETY: no concurrent writer exists in this single-threaded
        // exercise, so the peeked value is trivially consistent.
        unsafe { lock.with_peek(&mut |v| seen = *v + 2) };
        assert_eq!(seen, 7);
    }

    #[test]
    fn all_variants_implement_the_trait() {
        let locks: Vec<Box<dyn ReplicaLock<u64>>> = vec![
            Box::new(DistRwLock::new(0u64, 2)),
            Box::new(RwSpinLock::new(0u64)),
            Box::new(PhaseFairRwLock::new(0u64)),
        ];
        for lock in &locks {
            exercise(lock.as_ref());
        }
        assert_eq!(locks[0].reader_slots(), 2);
        assert_eq!(locks[1].reader_slots(), 0);
        assert_eq!(locks[2].reader_slots(), 0);
    }
}
