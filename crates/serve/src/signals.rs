//! SIGTERM / SIGINT → graceful drain, with no external dependencies.
//!
//! The workspace vendors no `libc`/`signal-hook`, so this module binds the
//! two C symbols it needs directly (they are already linked through std).
//! The handler does the only thing an async-signal-safe handler may do
//! here: store to a static atomic. The server's control thread polls the
//! flag and runs the ordinary drain path — the same one `ADMIN SHUTDOWN`
//! takes — so a `kill -TERM` and a wire-level shutdown are byte-for-byte
//! the same code.

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX signal numbers (Linux).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)`. Handler is passed as a `usize` to avoid depending on a
    /// libc crate for the `sighandler_t` typedef; on every Linux ABI this
    /// workspace targets it is a plain function pointer.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Set by the handler; observed by [`shutdown_requested`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The signal handler: one atomic store, nothing else (async-signal-safe).
extern "C" fn on_signal(_signum: i32) {
    // ord: Release pairs with shutdown_requested's Acquire; the only data
    // published is the flag itself.
    SHUTDOWN.store(true, Ordering::Release);
}

/// Installs the handler for `SIGINT` and `SIGTERM`.
///
/// Call once from the binary's main; safe to call again (idempotent).
pub fn install() {
    // SAFETY: `signal` is the POSIX libc function; `on_signal` is an
    // `extern "C" fn(i32)` whose address fits `sighandler_t`, and the
    // handler body is async-signal-safe (a single atomic store).
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// True once a shutdown signal has been delivered (or simulated).
pub fn shutdown_requested() -> bool {
    // ord: Acquire pairs with the handler's Release store.
    SHUTDOWN.load(Ordering::Acquire)
}

/// Raises the flag without a signal — lets tests (and `ADMIN SHUTDOWN`
/// fallout paths) exercise the exact signal-drain code.
pub fn request_shutdown() {
    // ord: Release — same contract as the real handler.
    SHUTDOWN.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_request_sets_flag() {
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
