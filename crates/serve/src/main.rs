//! `prep-serve` binary: bind a KV server over a sharded PREP-UC store.
//!
//! ```text
//! prep-serve [--addr 127.0.0.1:7070] [--shards 2] [--executors 2]
//!            [--conn-threads 2] [--queue-depth 128]
//!            [--durability buffered|durable] [--epsilon 64]
//!            [--log-size 4096] [--latency off|optane|optane/N]
//!            [--fairness adaptive|optimistic|throughput|centralized|fair]
//!            [--crash-sim]
//! ```
//!
//! The server runs until `ADMIN SHUTDOWN` arrives on the wire or the
//! process receives SIGTERM/SIGINT; either way it drains queues, releases
//! every pending durable ack, forces a final checkpoint, and exits 0.

use prep_serve::server::{ServeConfig, Server};
use prep_serve::signals;
use prep_uc::{DurabilityLevel, FairnessMode, LatencyModel};

fn usage() -> ! {
    eprintln!(
        "usage: prep-serve [--addr A] [--shards N] [--executors N] [--conn-threads N]\n\
         \x20                 [--queue-depth N] [--durability buffered|durable]\n\
         \x20                 [--epsilon N] [--log-size N] [--latency off|optane|optane/N]\n\
         \x20                 [--fairness adaptive|optimistic|throughput|centralized|fair]\n\
         \x20                 [--crash-sim]"
    );
    std::process::exit(2);
}

fn parse_latency(s: &str) -> LatencyModel {
    match s {
        "off" => LatencyModel::off(),
        "optane" => LatencyModel::optane(),
        _ => match s.strip_prefix("optane/") {
            Some(d) => LatencyModel::optane_scaled(d.parse().unwrap_or_else(|_| usage())),
            None => usage(),
        },
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:7070");
    let mut cfg = ServeConfig {
        watch_signals: true,
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--addr" => addr = val(&mut args),
            "--shards" => cfg.shards = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--executors" => {
                cfg.executors_per_shard = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--conn-threads" => {
                cfg.conn_threads = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--queue-depth" => cfg.queue_depth = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--durability" => {
                cfg.durability = match val(&mut args).as_str() {
                    "buffered" => DurabilityLevel::Buffered,
                    "durable" => DurabilityLevel::Durable,
                    _ => usage(),
                }
            }
            "--epsilon" => cfg.epsilon = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--log-size" => cfg.log_size = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--latency" => cfg.latency = parse_latency(&val(&mut args)),
            "--fairness" => {
                cfg.fairness = match val(&mut args).as_str() {
                    "adaptive" => FairnessMode::Adaptive,
                    "optimistic" => FairnessMode::Optimistic,
                    "throughput" => FairnessMode::Throughput,
                    "centralized" => FairnessMode::ThroughputCentralized,
                    "fair" => FairnessMode::StarvationFree,
                    _ => usage(),
                }
            }
            "--crash-sim" => cfg.crash_sim = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    signals::install();
    let server = match Server::start(cfg.clone(), &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("prep-serve: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "prep-serve listening on {} ({} shards x {} executors, {:?}, eps={}, crash_sim={})",
        server.local_addr(),
        cfg.shards,
        cfg.executors_per_shard,
        cfg.durability,
        cfg.epsilon,
        cfg.crash_sim
    );
    let report = server.join();
    println!(
        "prep-serve: clean shutdown — {} conns, {} requests ({} shed), {} durable acks, {} crashes; tails {:?}",
        report.connections,
        report.requests,
        report.retries,
        report.durable_acks,
        report.crashes,
        report.completed_tails
    );
}
