//! The wire protocol: small length-prefixed binary frames.
//!
//! Every frame is `[len: u32 LE][body: len bytes]` with `len ≤`
//! [`MAX_FRAME`]. Request bodies start with a verb byte and an ack byte;
//! responses start with a status byte. Both carry the caller's 64-bit
//! request id, so responses may be delivered out of order (durable acks
//! overtake nothing — they are *released later* than buffered acks for the
//! same batch — but buffered responses to later requests may pass them).
//!
//! ## Ack levels
//!
//! The ack byte selects what an update's response *means* — the wire-level
//! form of Montage-style buffered durable linearizability, where clients
//! choose their sync points:
//!
//! * **buffered** (0): the response is sent as soon as the operation has
//!   been applied by its shard's combiner. On a crash, up to the store's
//!   `N·(ε + β − 1)` most recent buffered-acked updates may be lost.
//! * **durable** (1): the response is withheld until the shard's
//!   crash-survivability watermark covers the operation's `completedTail`.
//!   A durable-acked update is never lost.
//!
//! Reads (`GET`/`SCAN`) ignore the ack byte: they never enter the log, so
//! there is nothing to make durable.

/// Largest frame either side will accept (guards allocation on decode).
pub const MAX_FRAME: usize = 64 * 1024;
/// Largest number of keys one `SCAN` may cover.
pub const MAX_SCAN: u32 = 512;

/// Acknowledgment level carried by update requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckLevel {
    /// Ack once applied (volatile); crash may lose the op within the bound.
    Buffered,
    /// Ack once crash-survivable; never lost.
    Durable,
}

/// Administrative sub-commands (the `ADMIN` verb).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminCmd {
    /// Return a [`WireStats`] snapshot of the store.
    Stats,
    /// Simulate a power failure and recover (crash-sim servers only).
    Crash,
    /// Drain every queue, force a final checkpoint, and stop the server.
    Shutdown,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point read.
    Get {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Key to read.
        key: u64,
    },
    /// Insert or overwrite.
    Put {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Ack level (see module docs).
        ack: AckLevel,
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Remove a key.
    Delete {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Ack level (see module docs).
        ack: AckLevel,
        /// Key to remove.
        key: u64,
    },
    /// Multi-point read of `count` consecutive keys starting at `start`
    /// (server-side multi-GET; not an ordered range scan — the underlying
    /// map is a hash map).
    Scan {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// First key.
        start: u64,
        /// Number of consecutive keys (≤ [`MAX_SCAN`]).
        count: u32,
    },
    /// Administrative command.
    Admin {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The sub-command.
        cmd: AdminCmd,
    },
}

impl Request {
    /// The caller-chosen request id.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Get { id, .. }
            | Request::Put { id, .. }
            | Request::Delete { id, .. }
            | Request::Scan { id, .. }
            | Request::Admin { id, .. } => id,
        }
    }
}

/// One shard's row in a [`WireStats`] snapshot.
///
/// The three `lane_*` vectors carry per-log counters for multi-log
/// (persistent CNR) shards; they are empty (count 0 on the wire) for
/// single-log shards, which is how today's server — Single-backed, see
/// `server.rs` — always encodes them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireShard {
    /// Completed updates on this shard.
    pub completed_tail: u64,
    /// Crash-survivability watermark (ops below it survive a crash now).
    pub durable_watermark: u64,
    /// Read-fast-path misses.
    pub read_slow_paths: u64,
    /// Validated optimistic (lock-free) reads: zero RMWs, zero shared stores.
    pub read_fast_optimistic: u64,
    /// Optimistic reads that failed seqlock validation and took the lock.
    pub read_validation_failures: u64,
    /// Synchronous CLFLUSH count.
    pub clflush: u64,
    /// Asynchronous CLFLUSHOPT count.
    pub clflushopt: u64,
    /// SFENCE count.
    pub sfence: u64,
    /// Replica checkpoint flushes.
    pub checkpoints: u64,
    /// Per-log `completedTail`s (multi-log shards only; else empty).
    pub lane_completed_tails: Vec<u64>,
    /// Per-log crash-survivability watermarks (multi-log shards only).
    pub lane_durable_watermarks: Vec<u64>,
    /// Per-log combine rounds (multi-log shards only).
    pub lane_combine_rounds: Vec<u64>,
}

/// The `ADMIN STATS` payload: the store's `StoreMetrics`, on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Recovery epoch (crashes survived).
    pub epoch: u64,
    /// Store-wide worst-case loss per crash.
    pub loss_bound: u64,
    /// Per-shard rows.
    pub shards: Vec<WireShard>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `GET` result.
    Value {
        /// Echoed request id.
        id: u64,
        /// The value, if the key was present.
        value: Option<u64>,
    },
    /// `PUT`/`DELETE`/`ADMIN CRASH`/`ADMIN SHUTDOWN` acknowledgment.
    Done {
        /// Echoed request id.
        id: u64,
    },
    /// `SCAN` result: the present keys and their values.
    Pairs {
        /// Echoed request id.
        id: u64,
        /// `(key, value)` for each present key in the scanned window.
        pairs: Vec<(u64, u64)>,
    },
    /// Backpressure: the shard's submission queue was full; retry later.
    Retry {
        /// Echoed request id.
        id: u64,
    },
    /// `ADMIN STATS` result.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The snapshot.
        stats: WireStats,
    },
    /// Request failed (see [`err_code`] constants).
    Err {
        /// Echoed request id.
        id: u64,
        /// Error code.
        code: u8,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Value { id, .. }
            | Response::Done { id }
            | Response::Pairs { id, .. }
            | Response::Retry { id }
            | Response::Stats { id, .. }
            | Response::Err { id, .. } => id,
        }
    }
}

/// Error codes carried by [`Response::Err`].
pub mod err_code {
    /// The server was built without crash simulation; `ADMIN CRASH` is
    /// unavailable.
    pub const NO_CRASH_SIM: u8 = 1;
    /// The request was malformed (bad verb/ack/scan bounds).
    pub const BAD_REQUEST: u8 = 2;
    /// The server is shutting down and no longer accepts requests.
    pub const SHUTTING_DOWN: u8 = 3;
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Declared frame length exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// Frame body was shorter than its fields require.
    Truncated,
    /// Unknown verb / status byte.
    BadTag(u8),
    /// Unknown ack level.
    BadAck(u8),
    /// `SCAN` count exceeds [`MAX_SCAN`].
    BadScan(u32),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProtoError::Oversize(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown verb/status byte {t}"),
            ProtoError::BadAck(a) => write!(f, "unknown ack level {a}"),
            ProtoError::BadScan(n) => write!(f, "scan of {n} keys exceeds MAX_SCAN"),
        }
    }
}

impl std::error::Error for ProtoError {}

const VERB_GET: u8 = 1;
const VERB_PUT: u8 = 2;
const VERB_DELETE: u8 = 3;
const VERB_SCAN: u8 = 4;
const VERB_ADMIN: u8 = 5;

const ADMIN_STATS: u8 = 1;
const ADMIN_CRASH: u8 = 2;
const ADMIN_SHUTDOWN: u8 = 3;

/// Upper bound on the per-shard lane count a STATS frame may declare;
/// generous versus `prep_uc::MAX_LOGS` (8) so the wire format outlives
/// engine growth without a protocol bump.
const MAX_WIRE_LANES: usize = 64;

const ST_VALUE: u8 = 1;
const ST_DONE: u8 = 2;
const ST_PAIRS: u8 = 3;
const ST_RETRY: u8 = 4;
const ST_STATS: u8 = 5;
const ST_ERR: u8 = 6;

fn ack_byte(a: AckLevel) -> u8 {
    match a {
        AckLevel::Buffered => 0,
        AckLevel::Durable => 1,
    }
}

fn parse_ack(b: u8) -> Result<AckLevel, ProtoError> {
    match b {
        0 => Ok(AckLevel::Buffered),
        1 => Ok(AckLevel::Durable),
        other => Err(ProtoError::BadAck(other)),
    }
}

/// A cursor over a frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtoError::Truncated)?
            .try_into()
            .expect("4-byte slice");
        self.pos = end;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtoError::Truncated)?
            .try_into()
            .expect("8-byte slice");
        self.pos = end;
        Ok(u64::from_le_bytes(bytes))
    }
}

/// Appends one encoded frame (length prefix included) to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match *req {
        Request::Get { id, key } => {
            out.push(VERB_GET);
            out.push(0);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Put {
            id,
            ack,
            key,
            value,
        } => {
            out.push(VERB_PUT);
            out.push(ack_byte(ack));
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        Request::Delete { id, ack, key } => {
            out.push(VERB_DELETE);
            out.push(ack_byte(ack));
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Scan { id, start, count } => {
            out.push(VERB_SCAN);
            out.push(0);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        Request::Admin { id, cmd } => {
            out.push(VERB_ADMIN);
            out.push(0);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(match cmd {
                AdminCmd::Stats => ADMIN_STATS,
                AdminCmd::Crash => ADMIN_CRASH,
                AdminCmd::Shutdown => ADMIN_SHUTDOWN,
            });
        }
    }
    end_frame(out, at);
}

/// Appends one encoded response frame (length prefix included) to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match *resp {
        Response::Value { id, value } => {
            out.push(ST_VALUE);
            out.extend_from_slice(&id.to_le_bytes());
            match value {
                Some(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        Response::Done { id } => {
            out.push(ST_DONE);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Response::Pairs { id, ref pairs } => {
            out.push(ST_PAIRS);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for &(k, v) in pairs {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Retry { id } => {
            out.push(ST_RETRY);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Response::Stats { id, ref stats } => {
            out.push(ST_STATS);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&stats.epoch.to_le_bytes());
            out.extend_from_slice(&stats.loss_bound.to_le_bytes());
            out.extend_from_slice(&(stats.shards.len() as u32).to_le_bytes());
            for s in &stats.shards {
                for field in [
                    s.completed_tail,
                    s.durable_watermark,
                    s.read_slow_paths,
                    s.read_fast_optimistic,
                    s.read_validation_failures,
                    s.clflush,
                    s.clflushopt,
                    s.sfence,
                    s.checkpoints,
                ] {
                    out.extend_from_slice(&field.to_le_bytes());
                }
                // Per-log section: lane count, then one (tail, watermark,
                // rounds) triple per log. Count 0 for single-log shards.
                let lanes = s.lane_completed_tails.len();
                debug_assert_eq!(lanes, s.lane_durable_watermarks.len());
                debug_assert_eq!(lanes, s.lane_combine_rounds.len());
                out.extend_from_slice(&(lanes as u32).to_le_bytes());
                for l in 0..lanes {
                    out.extend_from_slice(&s.lane_completed_tails[l].to_le_bytes());
                    out.extend_from_slice(&s.lane_durable_watermarks[l].to_le_bytes());
                    out.extend_from_slice(&s.lane_combine_rounds[l].to_le_bytes());
                }
            }
        }
        Response::Err { id, code } => {
            out.push(ST_ERR);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(code);
        }
    }
    end_frame(out, at);
}

/// Reserves the length prefix; returns its offset for [`end_frame`].
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    at
}

/// Back-patches the length prefix reserved by [`begin_frame`].
fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Splits one frame body off `buf`, if a full frame has arrived.
///
/// Returns `Ok(None)` when more bytes are needed, `Ok(Some((body, total)))`
/// with the body slice and the total bytes consumed (prefix + body)
/// otherwise.
fn frame_body(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtoError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice"));
    if len as usize > MAX_FRAME {
        return Err(ProtoError::Oversize(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((&buf[4..total], total)))
}

/// Decodes the next request frame from `buf`.
///
/// Returns `Ok(None)` if `buf` does not yet hold a complete frame;
/// otherwise the request and the number of bytes consumed.
pub fn decode_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ProtoError> {
    let Some((body, total)) = frame_body(buf)? else {
        return Ok(None);
    };
    let mut r = Reader::new(body);
    let verb = r.u8()?;
    let ack = r.u8()?;
    let id = r.u64()?;
    let req = match verb {
        VERB_GET => Request::Get { id, key: r.u64()? },
        VERB_PUT => Request::Put {
            id,
            ack: parse_ack(ack)?,
            key: r.u64()?,
            value: r.u64()?,
        },
        VERB_DELETE => Request::Delete {
            id,
            ack: parse_ack(ack)?,
            key: r.u64()?,
        },
        VERB_SCAN => {
            let start = r.u64()?;
            let count = r.u32()?;
            if count > MAX_SCAN {
                return Err(ProtoError::BadScan(count));
            }
            Request::Scan { id, start, count }
        }
        VERB_ADMIN => Request::Admin {
            id,
            cmd: match r.u8()? {
                ADMIN_STATS => AdminCmd::Stats,
                ADMIN_CRASH => AdminCmd::Crash,
                ADMIN_SHUTDOWN => AdminCmd::Shutdown,
                other => return Err(ProtoError::BadTag(other)),
            },
        },
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(Some((req, total)))
}

/// Decodes the next response frame from `buf` (see [`decode_request`]).
pub fn decode_response(buf: &[u8]) -> Result<Option<(Response, usize)>, ProtoError> {
    let Some((body, total)) = frame_body(buf)? else {
        return Ok(None);
    };
    let mut r = Reader::new(body);
    let status = r.u8()?;
    let id = r.u64()?;
    let resp = match status {
        ST_VALUE => Response::Value {
            id,
            value: match r.u8()? {
                0 => None,
                _ => Some(r.u64()?),
            },
        },
        ST_DONE => Response::Done { id },
        ST_PAIRS => {
            let n = r.u32()? as usize;
            if n > MAX_SCAN as usize {
                return Err(ProtoError::BadScan(n as u32));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.u64()?, r.u64()?));
            }
            Response::Pairs { id, pairs }
        }
        ST_RETRY => Response::Retry { id },
        ST_STATS => {
            let epoch = r.u64()?;
            let loss_bound = r.u64()?;
            let n = r.u32()? as usize;
            if n > 4096 {
                return Err(ProtoError::BadScan(n as u32));
            }
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                let mut shard = WireShard {
                    completed_tail: r.u64()?,
                    durable_watermark: r.u64()?,
                    read_slow_paths: r.u64()?,
                    read_fast_optimistic: r.u64()?,
                    read_validation_failures: r.u64()?,
                    clflush: r.u64()?,
                    clflushopt: r.u64()?,
                    sfence: r.u64()?,
                    checkpoints: r.u64()?,
                    ..WireShard::default()
                };
                let lanes = r.u32()? as usize;
                if lanes > MAX_WIRE_LANES {
                    return Err(ProtoError::BadScan(lanes as u32));
                }
                for _ in 0..lanes {
                    shard.lane_completed_tails.push(r.u64()?);
                    shard.lane_durable_watermarks.push(r.u64()?);
                    shard.lane_combine_rounds.push(r.u64()?);
                }
                shards.push(shard);
            }
            Response::Stats {
                id,
                stats: WireStats {
                    epoch,
                    loss_bound,
                    shards,
                },
            }
        }
        ST_ERR => Response::Err { id, code: r.u8()? },
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(Some((resp, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (got, used) = decode_request(&buf).unwrap().expect("complete frame");
        assert_eq!(got, req);
        assert_eq!(used, buf.len());
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (got, used) = decode_response(&buf).unwrap().expect("complete frame");
        assert_eq!(got, resp);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Get { id: 7, key: 42 });
        roundtrip_req(Request::Put {
            id: u64::MAX,
            ack: AckLevel::Durable,
            key: 1,
            value: 2,
        });
        roundtrip_req(Request::Put {
            id: 0,
            ack: AckLevel::Buffered,
            key: u64::MAX,
            value: 0,
        });
        roundtrip_req(Request::Delete {
            id: 3,
            ack: AckLevel::Durable,
            key: 9,
        });
        roundtrip_req(Request::Scan {
            id: 4,
            start: 100,
            count: MAX_SCAN,
        });
        for cmd in [AdminCmd::Stats, AdminCmd::Crash, AdminCmd::Shutdown] {
            roundtrip_req(Request::Admin { id: 5, cmd });
        }
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Value {
            id: 1,
            value: Some(99),
        });
        roundtrip_resp(Response::Value { id: 2, value: None });
        roundtrip_resp(Response::Done { id: 3 });
        roundtrip_resp(Response::Pairs {
            id: 4,
            pairs: vec![(1, 10), (2, 20), (u64::MAX, 0)],
        });
        roundtrip_resp(Response::Retry { id: 5 });
        roundtrip_resp(Response::Err {
            id: 6,
            code: err_code::NO_CRASH_SIM,
        });
        roundtrip_resp(Response::Stats {
            id: 7,
            stats: WireStats {
                epoch: 2,
                loss_bound: 64,
                shards: vec![
                    WireShard {
                        completed_tail: 10,
                        durable_watermark: 8,
                        read_slow_paths: 1,
                        read_fast_optimistic: 11,
                        read_validation_failures: 6,
                        clflush: 2,
                        clflushopt: 3,
                        sfence: 4,
                        checkpoints: 5,
                        lane_completed_tails: vec![6, 4],
                        lane_durable_watermarks: vec![5, 3],
                        lane_combine_rounds: vec![9, 7],
                    },
                    WireShard::default(),
                ],
            },
        });
    }

    #[test]
    fn partial_frames_return_none() {
        let mut buf = Vec::new();
        encode_request(&Request::Get { id: 1, key: 2 }, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_request(&buf[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let mut buf = Vec::new();
        encode_request(&Request::Get { id: 1, key: 2 }, &mut buf);
        encode_request(
            &Request::Put {
                id: 2,
                ack: AckLevel::Durable,
                key: 3,
                value: 4,
            },
            &mut buf,
        );
        let (first, used) = decode_request(&buf).unwrap().unwrap();
        assert_eq!(first.id(), 1);
        let (second, used2) = decode_request(&buf[used..]).unwrap().unwrap();
        assert_eq!(second.id(), 2);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Oversize declared length.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(matches!(
            decode_request(&huge),
            Err(ProtoError::Oversize(_))
        ));
        // Unknown verb.
        let mut buf = Vec::new();
        encode_request(&Request::Get { id: 1, key: 2 }, &mut buf);
        buf[4] = 99;
        assert!(matches!(decode_request(&buf), Err(ProtoError::BadTag(99))));
        // Bad ack on a PUT.
        let mut buf = Vec::new();
        encode_request(
            &Request::Put {
                id: 1,
                ack: AckLevel::Buffered,
                key: 2,
                value: 3,
            },
            &mut buf,
        );
        buf[5] = 7;
        assert!(matches!(decode_request(&buf), Err(ProtoError::BadAck(7))));
        // Truncated body: declared length longer than the GET payload.
        let mut buf = Vec::new();
        encode_request(&Request::Get { id: 1, key: 2 }, &mut buf);
        let len = buf.len();
        buf[0..4].copy_from_slice(&((len as u32 - 4 + 8).to_le_bytes()));
        buf.extend_from_slice(&[0; 8]);
        // Now the body is 8 bytes longer than GET needs — fine to decode —
        // but chop fields instead: declare 5 bytes and give 5.
        let short = [5u8, 0, 0, 0, VERB_GET, 0, 1, 0, 0];
        assert!(matches!(decode_request(&short), Err(ProtoError::Truncated)));
        // Scan over the cap.
        let mut buf = Vec::new();
        let at = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.push(VERB_SCAN);
        buf.push(0);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(MAX_SCAN + 1).to_le_bytes());
        let len = (buf.len() - at - 4) as u32;
        buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(decode_request(&buf), Err(ProtoError::BadScan(_))));
    }
}
