//! # prep-serve — a network KV service over the sharded PREP-UC store
//!
//! This crate turns [`prep_shard::ShardedStore`] into something a latency
//! benchmark can actually shoot at: a TCP server speaking a small
//! length-prefixed binary protocol ([`proto`]) with per-request ack levels
//! (*buffered* — acked once applied; *durable* — acked once the covering
//! persist reaches NVM), explicit backpressure (`RETRY` frames instead of
//! unbounded buffering), an `ADMIN` verb for stats / crash injection /
//! shutdown, and a drain path shared between `ADMIN SHUTDOWN` and
//! SIGTERM/SIGINT ([`signals`]).
//!
//! The interesting part is the [`server`] request pipeline: per-shard
//! bounded submission queues align open-loop network arrivals with the
//! flat combiner's batch boundaries — up to β queued ops enter one combine
//! round together — and a per-shard durability drainer releases durable
//! acks only when the shard's crash-survivability watermark passes the
//! op's covering `completedTail`. See the [`server`] module docs for the
//! full choreography (including crash-under-load and graceful shutdown).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod proto;
pub mod server;
pub mod signals;

pub use proto::{AckLevel, AdminCmd, Request, Response, WireShard, WireStats};
pub use server::{ServeConfig, Server, ShutdownReport, Store};
