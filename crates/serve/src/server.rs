//! The thread-per-core TCP server over [`prep_shard::ShardedStore`].
//!
//! ## Request pipeline: aligning arrivals with combiner batches
//!
//! ```text
//! acceptor ─▶ conn threads ─▶ per-shard submission queue ─▶ β executors ─▶ NR combiner
//!                 │                (bounded, RETRY)             │
//!                 └◀─────────── responses ◀── buffered ack ────┘
//!                 └◀─────────── responses ◀── durability drainer (durable ack)
//! ```
//!
//! Connection threads never touch the store: they parse frames and push
//! jobs into the target shard's **bounded submission queue**. Each shard
//! owns β executor threads (β = [`ServeConfig::executors_per_shard`]), all
//! registered NR workers of that shard; when a burst of requests lands on
//! one shard, up to β of them are in `execute` simultaneously, and NR's
//! flat combiner folds those β concurrent ops into **one combine round**
//! (one log reservation, one batch persist in durable mode). The queue is
//! what aligns open-loop arrivals — which know nothing of batches — with
//! combiner batch boundaries: arrivals coalesce in the queue while the
//! previous round runs, instead of each arrival paying a full round alone.
//!
//! When a queue is full the connection thread answers with a `RETRY` frame
//! immediately — explicit backpressure, never unbounded buffering, so an
//! overloaded shard sheds load at the wire instead of growing latency
//! without bound.
//!
//! ## Ack release points
//!
//! *Buffered* acks are written by the executor as soon as `execute`
//! returns (the op is applied, volatile). *Durable* acks are handed to the
//! shard's **durability drainer** together with the `completedTail` that
//! covers the op; the drainer releases the ack only once the shard's
//! crash-survivability watermark ([`prep_uc::PrepUc::durable_watermark`])
//! passes that tail — i.e. once the covering checkpoint (or persisted
//! `completedTail` in durable mode) has actually reached NVM. While
//! waiting it nudges the persistence thread
//! ([`prep_uc::PrepUc::nudge_checkpoint`]) so a lightly loaded server does
//! not hold durable acks for a full ε window.
//!
//! ## Crash and shutdown choreography
//!
//! `ADMIN CRASH` (crash-sim servers): the control thread moves the server
//! to `Crashing`; connection threads answer `RETRY`, executors and
//! drainers park — **pending durable acks are downgraded to `RETRY`**
//! (those ops may or may not survive the cut, so they must not be acked
//! `Done`; but unlike a real power failure the TCP connection survives the
//! simulated one, so silence would wedge clients — `RETRY` claims nothing
//! and keeps the one-response-per-frame invariant).
//! Only after every worker has parked is the cut captured, so every ack
//! that reached a client precedes the cut: durable-acked ops are always in
//! the recovered image, and buffered-acked loss stays within the store's
//! `N·(ε + β − 1)` bound. The store is rebuilt via
//! [`prep_shard::ShardedStore::recover`] on a fresh runtime, the
//! generation counter bumps, and workers re-register on the new store.
//!
//! `ADMIN SHUTDOWN` / SIGTERM: `Draining` — connection threads reject new
//! work, executors empty the queues, drainers release every pending
//! durable ack, the store is quiesced
//! ([`prep_shard::ShardedStore::quiesce_persistence`], the final forced
//! checkpoint), and only then does the server stop: a clean shutdown
//! loses **zero** buffered ops, versus up to the bound on a crash.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
use prep_shard::{shard_index, ShardedStore};
use prep_sync::{spin_until, TicketLock, TryLock, TryLockGuard, Waiter};
use prep_topology::{ThreadAssignment, Topology};
use prep_uc::{DurabilityLevel, FairnessMode, LatencyModel, PmemRuntime, PrepConfig};

use crate::proto::{self, err_code, AckLevel, AdminCmd, Request, Response, WireShard, WireStats};
use crate::signals;

/// The store type this server fronts.
///
/// The server builds **single-log** shards, not
/// [`prep_shard::ShardedStore::new_multilog`]: the durability drainer
/// releases a buffered-durable ack when one scalar watermark passes the
/// op's covering `completedTail`, and on a multi-log shard that scalar
/// (the per-log sum) could cover an op's index while *its* log is still
/// short of it — releasing acks for ops a crash can lose. Driving
/// multi-log shards here needs a per-log (watermark, cover) pairing in the
/// drainer; until then the STATS wire format already carries the per-log
/// counters (count 0 for this server's shards).
pub type Store = ShardedStore<HashMap>;

/// Routing key for the KV map ops (`Len` has no key; serve never emits it).
fn route_key(op: &MapOp) -> u64 {
    op.key().unwrap_or(0)
}

/// Server lifecycle states (stored in `Inner::state`).
const RUNNING: u8 = 0;
const CRASHING: u8 = 1;
const DRAINING: u8 = 2;
const STOPPED: u8 = 3;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of store shards (independent PREP-UC logs).
    pub shards: usize,
    /// Executor threads per shard — the β of the combiner-batch alignment:
    /// up to this many queued ops enter one combine round together.
    pub executors_per_shard: usize,
    /// Connection-handling threads (the "cores" of thread-per-core).
    pub conn_threads: usize,
    /// Per-shard submission-queue bound; a full queue answers `RETRY`.
    pub queue_depth: usize,
    /// Store durability mode. In `Durable` mode every ack is implicitly
    /// durable (execute returns only after the covering persist).
    pub durability: DurabilityLevel,
    /// Checkpoint cadence ε (buffered mode's loss window).
    pub epsilon: u64,
    /// Per-shard operation-log capacity.
    pub log_size: u64,
    /// Simulated NVM latency model.
    pub latency: LatencyModel,
    /// Replica read-path fairness mode. Defaults to
    /// [`FairnessMode::Adaptive`]: GETs start on the distributed-lock slot
    /// path and migrate to optimistic lock-free reads when the observed
    /// read/write mix warrants it.
    pub fairness: FairnessMode,
    /// Enable crash simulation (`ADMIN CRASH`); costs image upkeep.
    pub crash_sim: bool,
    /// Poll the process signal flag ([`signals::shutdown_requested`]) from
    /// the control thread. Binaries set this; in-process tests leave it
    /// off so one test's signal cannot drain another test's server.
    pub watch_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            executors_per_shard: 2,
            conn_threads: 2,
            queue_depth: 128,
            durability: DurabilityLevel::Buffered,
            epsilon: 64,
            log_size: 4096,
            latency: LatencyModel::off(),
            fairness: FairnessMode::Adaptive,
            crash_sim: false,
            watch_signals: false,
        }
    }
}

impl ServeConfig {
    /// Total executor workers (the store's registered worker count).
    fn workers(&self) -> usize {
        self.shards * self.executors_per_shard
    }

    /// A fresh [`PrepConfig`] (fresh runtime) for construction or recovery.
    fn prep_config(&self) -> PrepConfig {
        PrepConfig::new(self.durability)
            .with_log_size(self.log_size)
            .with_epsilon(self.epsilon)
            .with_runtime(PmemRuntime::new(self.latency, self.crash_sim))
            .with_fairness(self.fairness)
    }
}

/// One connection's shared write half: executors, drainers, and the
/// control thread all write complete frames under the per-connection
/// ticket lock, so frames never interleave on the wire.
struct ConnIo {
    stream: TcpStream,
    wlock: TicketLock,
}

impl ConnIo {
    /// Writes one already-encoded frame; short writes and `WouldBlock`
    /// (the stream is non-blocking) are retried under the lock. Errors are
    /// swallowed — a dead connection is detected and reaped by its reader.
    fn send(&self, frame: &[u8]) {
        let _g = self.wlock.lock();
        let mut s = &self.stream;
        let mut off = 0;
        let mut w = Waiter::new();
        while off < frame.len() {
            match s.write(&frame[off..]) {
                Ok(0) => return,
                Ok(n) => {
                    off += n;
                    w.reset();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => w.wait(),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Encode-and-send convenience.
    fn respond(&self, resp: &Response) {
        let mut buf = Vec::with_capacity(32);
        proto::encode_response(resp, &mut buf);
        self.send(&buf);
    }
}

/// What an executor does with a parsed data request.
enum JobKind {
    Get { key: u64 },
    Put { key: u64, value: u64 },
    Delete { key: u64 },
    Scan { start: u64, count: u32 },
}

/// A queued unit of work for one shard's executors.
struct Job {
    id: u64,
    ack: AckLevel,
    kind: JobKind,
    conn: Arc<ConnIo>,
}

/// A durable ack waiting for its covering persist.
struct DurAck {
    /// Request id (for the RETRY downgrade when a crash interrupts).
    id: u64,
    /// `completedTail` that covers the op (read after `execute` returned).
    cover: u64,
    /// The encoded response frame, released once covered.
    frame: Vec<u8>,
    conn: Arc<ConnIo>,
}

/// One shard's request pipeline.
struct Pipeline {
    /// Bounded submission queue (the combiner-batch coalescing point).
    queue: TryLock<VecDeque<Job>>,
    /// Mirror of `queue.len()` for lock-free full/empty checks.
    len: AtomicUsize,
    /// Executors currently inside `execute` (drain barrier).
    busy: AtomicUsize,
    /// Durable acks awaiting their covering persist.
    dur_queue: TryLock<VecDeque<DurAck>>,
    /// Durable acks pending release (decremented only after the ack is on
    /// the wire, so `0` means every accepted durable op has been acked).
    dur_len: AtomicUsize,
}

impl Pipeline {
    fn new() -> Self {
        Pipeline {
            queue: TryLock::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            dur_queue: TryLock::new(VecDeque::new()),
            dur_len: AtomicUsize::new(0),
        }
    }
}

/// Monotone service counters.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    retries: AtomicU64,
    durable_acks: AtomicU64,
    crashes: AtomicU64,
}

/// Shared server state.
/// One queued admin command: the verb, the request id to echo, and the
/// connection to answer on (`None` for process-internal requests, e.g.
/// the signal-driven shutdown).
type ControlMsg = (AdminCmd, u64, Option<Arc<ConnIo>>);

struct Inner {
    cfg: ServeConfig,
    assignment: ThreadAssignment,
    /// Lifecycle state (RUNNING/CRASHING/DRAINING/STOPPED).
    state: AtomicU8,
    /// Bumped on every crash-recovery; workers re-register when it moves.
    generation: AtomicU64,
    /// The current store. `None` only transiently inside crash recovery.
    store: TryLock<Option<Arc<Store>>>,
    pipelines: Vec<Pipeline>,
    /// Admin commands routed to the control thread.
    control: TryLock<VecDeque<ControlMsg>>,
    /// Per-connection-thread inbox of freshly accepted sockets.
    conn_inbox: Vec<TryLock<Vec<TcpStream>>>,
    /// Workers (executors + drainers) currently parked for a crash.
    parked: AtomicUsize,
    counters: Counters,
}

impl Inner {
    #[inline]
    fn state(&self) -> u8 {
        // ord: Acquire pairs with the control thread's Release transitions;
        // observing DRAINING/STOPPED implies the decision that caused it.
        self.state.load(Ordering::Acquire)
    }

    /// Spin-acquires a `TryLock` (none of these sections block or do IO,
    /// except `ConnIo::send` which has its own ticket lock).
    fn locked<'a, T>(&self, l: &'a TryLock<T>) -> TryLockGuard<'a, T> {
        let mut w = Waiter::new();
        loop {
            if let Some(g) = l.try_lock() {
                return g;
            }
            w.wait();
        }
    }

    /// Clones the current store handle, waiting out a crash swap.
    fn store_arc(&self) -> Arc<Store> {
        let mut w = Waiter::new();
        loop {
            if let Some(s) = self.locked(&self.store).as_ref() {
                return Arc::clone(s);
            }
            w.wait();
        }
    }
}

/// Everything [`Server::join`] reports after the server stopped.
pub struct ShutdownReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests parsed (including admin and shed requests).
    pub requests: u64,
    /// Requests shed with `RETRY` (backpressure + crash window).
    pub retries: u64,
    /// Durable acks released.
    pub durable_acks: u64,
    /// Crash-recovery cycles survived.
    pub crashes: u64,
    /// Final per-shard `completedTail`s.
    pub completed_tails: Vec<u64>,
    /// Final per-shard crash-survivability watermarks. After a clean
    /// shutdown these equal `completed_tails` — the zero-loss property.
    pub durable_watermarks: Vec<u64>,
    /// The quiesced store, for post-shutdown inspection (tests capture a
    /// cut from it to prove zero loss).
    pub store: Arc<Store>,
}

/// A running KV server; see the module docs for the architecture.
pub struct Server {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and starts every thread.
    pub fn start(cfg: ServeConfig, bind: &str) -> std::io::Result<Server> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.executors_per_shard > 0, "need at least one executor");
        assert!(cfg.conn_threads > 0, "need at least one conn thread");
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let workers = cfg.workers();
        // One extra core: the topology reserves a CPU for the persistence
        // thread, so `workers` registered workers need `workers + 1` cores.
        let assignment = Topology::new(1, workers + 1, 1).assign_workers(workers);
        let store = Arc::new(Store::new(
            HashMap::new(),
            cfg.shards,
            assignment.clone(),
            cfg.prep_config(),
            route_key,
        ));
        let inner = Arc::new(Inner {
            assignment,
            state: AtomicU8::new(RUNNING),
            generation: AtomicU64::new(0),
            store: TryLock::new(Some(store)),
            pipelines: (0..cfg.shards).map(|_| Pipeline::new()).collect(),
            control: TryLock::new(VecDeque::new()),
            conn_inbox: (0..cfg.conn_threads)
                .map(|_| TryLock::new(Vec::new()))
                .collect(),
            parked: AtomicUsize::new(0),
            counters: Counters::default(),
            cfg,
        });

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || acceptor_loop(inner, listener))
                    .expect("spawn acceptor"),
            );
        }
        for c in 0..inner.cfg.conn_threads {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-conn-{c}"))
                    .spawn(move || conn_loop(inner, c))
                    .expect("spawn conn thread"),
            );
        }
        for s in 0..inner.cfg.shards {
            for e in 0..inner.cfg.executors_per_shard {
                let inner = Arc::clone(&inner);
                let worker = s * inner.cfg.executors_per_shard + e;
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("serve-exec-{s}-{e}"))
                        .spawn(move || executor_loop(inner, s, worker))
                        .expect("spawn executor"),
                );
            }
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-dur-{s}"))
                    .spawn(move || drainer_loop(inner, s))
                    .expect("spawn drainer"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-control".into())
                    .spawn(move || control_loop(inner))
                    .expect("spawn control"),
            );
        }
        Ok(Server {
            inner,
            threads,
            addr,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the control thread to drain and stop (same path as
    /// `ADMIN SHUTDOWN` and SIGTERM). Returns immediately.
    pub fn request_shutdown(&self) {
        self.inner
            .locked(&self.inner.control)
            .push_back((AdminCmd::Shutdown, 0, None));
    }

    /// Crash-recovery cycles performed so far.
    pub fn crash_count(&self) -> u64 {
        // ord: monotone counter; Relaxed suffices for a diagnostic read.
        self.inner.counters.crashes.load(Ordering::Relaxed)
    }

    /// A handle to the current store (diagnostics/tests).
    ///
    /// Do **not** hold this across an `ADMIN CRASH`: recovery waits for
    /// exclusive ownership of the old store before rebuilding.
    pub fn store_handle(&self) -> Arc<Store> {
        self.inner.store_arc()
    }

    /// Blocks until the server has stopped (via [`Server::request_shutdown`],
    /// `ADMIN SHUTDOWN`, or a watched signal), then joins every thread and
    /// reports.
    pub fn join(self) -> ShutdownReport {
        spin_until(|| self.inner.state() == STOPPED);
        for t in self.threads {
            let _ = t.join();
        }
        let store = self.inner.store_arc();
        let c = &self.inner.counters;
        ShutdownReport {
            // ord: all threads joined; these are final values (Relaxed).
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed), // ord: post-join
            retries: c.retries.load(Ordering::Relaxed),   // ord: post-join
            durable_acks: c.durable_acks.load(Ordering::Relaxed), // ord: post-join
            crashes: c.crashes.load(Ordering::Relaxed),   // ord: post-join
            completed_tails: store.completed_tails(),
            durable_watermarks: store.durable_watermarks(),
            store,
        }
    }

    /// [`Server::request_shutdown`] + [`Server::join`].
    pub fn shutdown(self) -> ShutdownReport {
        self.request_shutdown();
        self.join()
    }
}

/// Accept loop: hands sockets to connection threads round-robin.
fn acceptor_loop(inner: Arc<Inner>, listener: TcpListener) {
    let mut next = 0usize;
    let mut w = Waiter::new();
    loop {
        if inner.state() == STOPPED {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                // ord: monotone counter (Relaxed).
                inner.counters.connections.fetch_add(1, Ordering::Relaxed);
                inner
                    .locked(&inner.conn_inbox[next % inner.cfg.conn_threads])
                    .push(stream);
                next = next.wrapping_add(1);
                w.reset();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => w.wait(),
            Err(_) => w.wait(),
        }
    }
}

/// One connection's reader-side state.
struct ConnState {
    io: Arc<ConnIo>,
    rbuf: Vec<u8>,
}

/// Connection thread: owns a set of connections, reads frames, dispatches.
fn conn_loop(inner: Arc<Inner>, index: usize) {
    let mut conns: Vec<ConnState> = Vec::new();
    let mut w = Waiter::new();
    loop {
        let st = inner.state();
        if st == STOPPED {
            for c in &conns {
                let _ = c.io.stream.shutdown(NetShutdown::Both);
            }
            return;
        }
        {
            let mut inbox = inner.locked(&inner.conn_inbox[index]);
            for stream in inbox.drain(..) {
                conns.push(ConnState {
                    io: Arc::new(ConnIo {
                        stream,
                        wlock: TicketLock::new(),
                    }),
                    rbuf: Vec::new(),
                });
            }
        }
        let mut progress = false;
        conns.retain_mut(|conn| service_conn(&inner, st, conn, &mut progress));
        if progress {
            w.reset();
        } else {
            w.wait();
        }
    }
}

/// Reads and dispatches everything currently available on one connection.
/// Returns false when the connection should be dropped.
fn service_conn(inner: &Arc<Inner>, st: u8, conn: &mut ConnState, progress: &mut bool) -> bool {
    let mut tmp = [0u8; 4096];
    loop {
        let mut s = &conn.io.stream;
        match s.read(&mut tmp) {
            Ok(0) => return false,
            Ok(n) => {
                conn.rbuf.extend_from_slice(&tmp[..n]);
                *progress = true;
                if n < tmp.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    loop {
        match proto::decode_request(&conn.rbuf) {
            Ok(None) => break,
            Ok(Some((req, used))) => {
                conn.rbuf.drain(..used);
                dispatch(inner, st, req, &conn.io);
            }
            // Protocol error: this peer is speaking garbage; drop it.
            Err(_) => return false,
        }
    }
    true
}

/// Routes one parsed request: admin → control queue, data → shard queue.
fn dispatch(inner: &Arc<Inner>, st: u8, req: Request, io: &Arc<ConnIo>) {
    // ord: monotone counter (Relaxed).
    inner.counters.requests.fetch_add(1, Ordering::Relaxed);
    let id = req.id();
    let (shard, job) = match req {
        Request::Admin { id, cmd } => {
            inner
                .locked(&inner.control)
                .push_back((cmd, id, Some(Arc::clone(io))));
            return;
        }
        Request::Get { id, key } => (
            shard_index(key, inner.cfg.shards),
            Job {
                id,
                ack: AckLevel::Buffered,
                kind: JobKind::Get { key },
                conn: Arc::clone(io),
            },
        ),
        Request::Put {
            id,
            ack,
            key,
            value,
        } => (
            shard_index(key, inner.cfg.shards),
            Job {
                id,
                ack,
                kind: JobKind::Put { key, value },
                conn: Arc::clone(io),
            },
        ),
        Request::Delete { id, ack, key } => (
            shard_index(key, inner.cfg.shards),
            Job {
                id,
                ack,
                kind: JobKind::Delete { key },
                conn: Arc::clone(io),
            },
        ),
        Request::Scan { id, start, count } => (
            shard_index(start, inner.cfg.shards),
            Job {
                id,
                ack: AckLevel::Buffered,
                kind: JobKind::Scan { start, count },
                conn: Arc::clone(io),
            },
        ),
    };
    match st {
        RUNNING => {}
        // The crash window looks like transient overload from outside:
        // clients retry and succeed after recovery.
        CRASHING => {
            // ord: monotone counter (Relaxed).
            inner.counters.retries.fetch_add(1, Ordering::Relaxed);
            io.respond(&Response::Retry { id });
            return;
        }
        _ => {
            io.respond(&Response::Err {
                id,
                code: err_code::SHUTTING_DOWN,
            });
            return;
        }
    }
    let pl = &inner.pipelines[shard];
    // ord: Acquire pairs with push/pop AcqRel updates; a stale full reading
    // only sheds one request early, never overfills (rechecked under lock).
    if pl.len.load(Ordering::Acquire) >= inner.cfg.queue_depth {
        // ord: monotone counter (Relaxed).
        inner.counters.retries.fetch_add(1, Ordering::Relaxed);
        io.respond(&Response::Retry { id });
        return;
    }
    let mut q = inner.locked(&pl.queue);
    if q.len() >= inner.cfg.queue_depth {
        drop(q);
        // ord: monotone counter (Relaxed).
        inner.counters.retries.fetch_add(1, Ordering::Relaxed);
        io.respond(&Response::Retry { id });
        return;
    }
    q.push_back(job);
    // ord: AcqRel keeps the mirror exact under concurrent push/pop.
    pl.len.fetch_add(1, Ordering::AcqRel);
}

/// Why an executor/drainer left its per-generation loop.
enum After {
    Exit,
    Park,
}

/// Executor thread: one registered NR worker of `shard`, popping the
/// submission queue. β of these per shard is the combiner-batch alignment.
fn executor_loop(inner: Arc<Inner>, shard: usize, worker: usize) {
    loop {
        // ord: Acquire pairs with the control thread's generation bump
        // Release after recovery installs the new store.
        let gen = inner.generation.load(Ordering::Acquire);
        let store = inner.store_arc();
        let token = store.register(worker);
        let after = executor_generation(&inner, &store, &token, shard);
        drop(token);
        drop(store);
        match after {
            After::Exit => return,
            After::Park => {
                if !park(&inner, gen) {
                    return;
                }
            }
        }
    }
}

/// Parks until recovery publishes a new generation. Returns false when the
/// server stopped instead.
fn park(inner: &Arc<Inner>, gen: u64) -> bool {
    // ord: AcqRel — the Release half publishes this worker's dropped store
    // handle to the control thread's parked-count Acquire spin.
    inner.parked.fetch_add(1, Ordering::AcqRel);
    let mut w = Waiter::new();
    let resume = loop {
        match inner.state() {
            STOPPED => break false,
            // ord: Acquire pairs with recovery's generation-bump Release.
            RUNNING if inner.generation.load(Ordering::Acquire) != gen => break true,
            _ => w.wait(),
        }
    };
    // ord: AcqRel, symmetric with the increment above.
    inner.parked.fetch_sub(1, Ordering::AcqRel);
    resume
}

/// Executes jobs for one store generation.
fn executor_generation(
    inner: &Arc<Inner>,
    store: &Arc<Store>,
    token: &prep_shard::ShardToken,
    shard: usize,
) -> After {
    let pl = &inner.pipelines[shard];
    let mut w = Waiter::new();
    loop {
        match inner.state() {
            CRASHING => return After::Park,
            STOPPED => return After::Exit,
            // RUNNING pops and executes; DRAINING keeps popping until the
            // queue is empty (the control thread waits on len+busy before
            // quiescing), then idles until STOPPED.
            _ => {}
        }
        // busy is raised *before* the pop so `len == 0 && busy == 0` is a
        // true drain barrier (no job can be in flight unobserved).
        // ord: AcqRel pairs with the control thread's drain-barrier
        // Acquire reads.
        pl.busy.fetch_add(1, Ordering::AcqRel);
        let job = {
            // ord: Acquire mirror check avoids taking the lock when empty.
            if pl.len.load(Ordering::Acquire) == 0 {
                None
            } else {
                let mut q = inner.locked(&pl.queue);
                let j = q.pop_front();
                if j.is_some() {
                    // ord: AcqRel keeps the mirror exact.
                    pl.len.fetch_sub(1, Ordering::AcqRel);
                }
                j
            }
        };
        match job {
            Some(job) => {
                execute_job(inner, store, token, shard, job);
                // ord: AcqRel, symmetric with the raise above.
                pl.busy.fetch_sub(1, Ordering::AcqRel);
                w.reset();
            }
            None => {
                // ord: AcqRel, symmetric with the raise above.
                pl.busy.fetch_sub(1, Ordering::AcqRel);
                w.wait();
            }
        }
    }
}

/// Runs one job on the store and releases (or defers) its ack.
fn execute_job(
    inner: &Arc<Inner>,
    store: &Arc<Store>,
    token: &prep_shard::ShardToken,
    shard: usize,
    job: Job,
) {
    match job.kind {
        JobKind::Get { key } => {
            let value = match store.execute(token, MapOp::Get { key }) {
                MapResp::Value(v) => v,
                _ => None,
            };
            job.conn.respond(&Response::Value { id: job.id, value });
        }
        JobKind::Scan { start, count } => {
            let mut pairs = Vec::new();
            for key in start..start.saturating_add(count as u64) {
                if let MapResp::Value(Some(v)) = store.execute(token, MapOp::Get { key }) {
                    pairs.push((key, v));
                }
            }
            job.conn.respond(&Response::Pairs { id: job.id, pairs });
        }
        JobKind::Put { key, value } => {
            store.execute(token, MapOp::Insert { key, value });
            finish_update(inner, store, shard, &job);
        }
        JobKind::Delete { key } => {
            store.execute(token, MapOp::Remove { key });
            finish_update(inner, store, shard, &job);
        }
    }
}

/// Releases an update's ack: immediately for buffered acks (and for
/// durable-mode stores, where `execute` already waited out the persist),
/// deferred through the durability drainer otherwise.
fn finish_update(inner: &Arc<Inner>, store: &Arc<Store>, shard: usize, job: &Job) {
    let durable_store = store.shard(shard).config().durability == DurabilityLevel::Durable;
    if job.ack == AckLevel::Buffered || durable_store {
        job.conn.respond(&Response::Done { id: job.id });
        return;
    }
    // The op completed on `shard`, so the shard's current completedTail
    // covers its log index; once the watermark passes this value the op is
    // crash-survivable and the ack may be released.
    let cover = store.shard(shard).completed_tail();
    let mut frame = Vec::with_capacity(16);
    proto::encode_response(&Response::Done { id: job.id }, &mut frame);
    let pl = &inner.pipelines[shard];
    // ord: AcqRel pairs with the drain barrier's Acquire; raised before
    // the push so dur_len == 0 always means "every durable ack released".
    pl.dur_len.fetch_add(1, Ordering::AcqRel);
    inner.locked(&pl.dur_queue).push_back(DurAck {
        id: job.id,
        cover,
        frame,
        conn: Arc::clone(&job.conn),
    });
}

/// Durability drainer: releases durable acks once their covering
/// `completedTail` persist completes, nudging the persistence thread when
/// the wait escalates.
fn drainer_loop(inner: Arc<Inner>, shard: usize) {
    loop {
        // ord: Acquire pairs with recovery's generation-bump Release.
        let gen = inner.generation.load(Ordering::Acquire);
        let store = inner.store_arc();
        let after = drainer_generation(&inner, &store, shard);
        drop(store);
        match after {
            After::Exit => return,
            After::Park => {
                if !park(&inner, gen) {
                    return;
                }
            }
        }
    }
}

fn drainer_generation(inner: &Arc<Inner>, store: &Arc<Store>, shard: usize) -> After {
    let pl = &inner.pipelines[shard];
    let mut w = Waiter::new();
    loop {
        match inner.state() {
            CRASHING => {
                // The crash interrupts every pending durable ack before
                // its covering persist: those ops may or may not survive
                // the cut, so they must NOT be acked `Done` — but the TCP
                // connection outlives the simulated power failure, so
                // silence would wedge the client forever. Downgrade each
                // to `RETRY` (no durability claim; the client replays),
                // preserving the invariant that every frame gets exactly
                // one response.
                let dropped: Vec<DurAck> = {
                    let mut q = inner.locked(&pl.dur_queue);
                    q.drain(..).collect()
                };
                let n = dropped.len();
                for ack in dropped {
                    ack.conn.respond(&Response::Retry { id: ack.id });
                }
                // ord: AcqRel pairs with the drain barrier's Acquire.
                pl.dur_len.fetch_sub(n, Ordering::AcqRel);
                return After::Park;
            }
            STOPPED => return After::Exit,
            _ => {}
        }
        let ack = inner.locked(&pl.dur_queue).pop_front();
        match ack {
            Some(ack) => {
                if wait_covered(inner, store, shard, ack.cover) {
                    ack.conn.send(&ack.frame);
                    // ord: monotone counter (Relaxed).
                    inner.counters.durable_acks.fetch_add(1, Ordering::Relaxed);
                    // ord: AcqRel — only after the ack is on the wire does
                    // the pending count drop (drain barrier exactness).
                    pl.dur_len.fetch_sub(1, Ordering::AcqRel);
                    w.reset();
                } else {
                    // Crash interrupted the wait: downgrade to RETRY (no
                    // durability claim), park next iteration.
                    ack.conn.respond(&Response::Retry { id: ack.id });
                    // ord: AcqRel, see above.
                    pl.dur_len.fetch_sub(1, Ordering::AcqRel);
                }
            }
            None => w.wait(),
        }
    }
}

/// Waits until `shard`'s watermark covers `cover`. Returns false if a
/// crash began first.
fn wait_covered(inner: &Arc<Inner>, store: &Arc<Store>, shard: usize, cover: u64) -> bool {
    let sh = store.shard(shard);
    let mut w = Waiter::new();
    loop {
        if sh.durable_watermark() >= cover {
            return true;
        }
        if inner.state() == CRASHING {
            return false;
        }
        if w.is_contended() {
            // The natural checkpoint is up to ε ops away; pull it forward
            // rather than sitting on the client's ack.
            sh.nudge_checkpoint();
        }
        w.wait();
    }
}

/// Control thread: admin commands, crash recovery, drain/shutdown.
fn control_loop(inner: Arc<Inner>) {
    let mut w = Waiter::new();
    loop {
        if inner.cfg.watch_signals && signals::shutdown_requested() && inner.state() == RUNNING {
            do_shutdown(&inner, None);
        }
        let msg = inner.locked(&inner.control).pop_front();
        match msg {
            Some((AdminCmd::Stats, id, io)) => {
                let stats = wire_stats(&inner.store_arc());
                if let Some(io) = io {
                    io.respond(&Response::Stats { id, stats });
                }
                w.reset();
            }
            Some((AdminCmd::Crash, id, io)) => {
                do_crash(&inner, id, io);
                w.reset();
            }
            Some((AdminCmd::Shutdown, id, io)) => {
                do_shutdown(&inner, io.map(|io| (id, io)));
                w.reset();
            }
            None => {
                if inner.state() == STOPPED {
                    return;
                }
                w.wait();
            }
        }
    }
}

/// Converts a [`prep_shard::StoreMetrics`] snapshot to its wire form.
fn wire_stats(store: &Arc<Store>) -> WireStats {
    let m = store.metrics();
    WireStats {
        epoch: m.epoch,
        loss_bound: m.loss_bound,
        shards: m
            .shards
            .iter()
            .map(|s| WireShard {
                completed_tail: s.completed_tail,
                durable_watermark: s.durable_watermark,
                read_slow_paths: s.read_slow_paths,
                read_fast_optimistic: s.read_fast_optimistic,
                read_validation_failures: s.read_validation_failures,
                clflush: s.stats.clflush,
                clflushopt: s.stats.clflushopt,
                sfence: s.stats.sfence,
                checkpoints: s.stats.checkpoints,
                lane_completed_tails: s.lane_completed_tails.clone(),
                lane_durable_watermarks: s.lane_durable_watermarks.clone(),
                lane_combine_rounds: s.lane_combine_rounds.clone(),
            })
            .collect(),
    }
}

/// Simulated power failure + recovery (see module docs for the ordering
/// argument: all acks precede the cut because all workers park first).
fn do_crash(inner: &Arc<Inner>, id: u64, io: Option<Arc<ConnIo>>) {
    if !inner.cfg.crash_sim {
        if let Some(io) = io {
            io.respond(&Response::Err {
                id,
                code: err_code::NO_CRASH_SIM,
            });
        }
        return;
    }
    // ord: Release — workers' state Acquire must see everything decided
    // before the crash began.
    inner.state.store(CRASHING, Ordering::Release);
    let target = inner.cfg.shards * (inner.cfg.executors_per_shard + 1);
    // ord: Acquire pairs with park()'s AcqRel — once the count reaches the
    // target, every worker has dropped its store handle and no further ack
    // can be written.
    spin_until(|| inner.parked.load(Ordering::Acquire) == target);

    let old = inner
        .locked(&inner.store)
        .take()
        .expect("store present outside crash recovery");
    let (token, image) = old.simulate_crash();
    // Recovery needs exclusive ownership: PrepUc::drop joins the old
    // persistence threads so nothing writes to the old runtime after the
    // cut. Workers have parked (handles dropped); transient holders
    // (stats) are bounded.
    let mut old = old;
    let mut w = Waiter::new();
    let store = loop {
        match Arc::try_unwrap(old) {
            Ok(s) => break s,
            Err(again) => {
                old = again;
                w.wait();
            }
        }
    };
    drop(store);
    let recovered = Store::recover(
        token,
        image,
        inner.assignment.clone(),
        inner.cfg.prep_config(),
        route_key,
    );
    *inner.locked(&inner.store) = Some(Arc::new(recovered));
    // ord: monotone counter (Relaxed).
    inner.counters.crashes.fetch_add(1, Ordering::Relaxed);
    // ord: Release publishes the new store before workers' generation
    // Acquire lets them re-register.
    inner.generation.fetch_add(1, Ordering::AcqRel);
    // ord: Release, same contract as every state transition.
    inner.state.store(RUNNING, Ordering::Release);
    if let Some(io) = io {
        io.respond(&Response::Done { id });
    }
}

/// Drain-and-stop: empty every queue, release every pending durable ack,
/// force the final checkpoints, then stop. Zero buffered-op loss.
fn do_shutdown(inner: &Arc<Inner>, reply: Option<(u64, Arc<ConnIo>)>) {
    if inner.state() != RUNNING {
        if let Some((id, io)) = reply {
            io.respond(&Response::Done { id });
        }
        return;
    }
    // ord: Release — conn threads' state Acquire starts shedding new work.
    inner.state.store(DRAINING, Ordering::Release);
    for pl in &inner.pipelines {
        // ord: Acquire pairs with the executors' AcqRel updates; both zero
        // with no new pushes possible means the queue is truly drained.
        spin_until(|| pl.len.load(Ordering::Acquire) == 0 && pl.busy.load(Ordering::Acquire) == 0);
        // ord: Acquire — zero means every accepted durable ack was released.
        spin_until(|| pl.dur_len.load(Ordering::Acquire) == 0);
    }
    // The final forced checkpoint: after this, watermark == completedTail
    // on every shard, so a post-shutdown crash loses nothing.
    let store = inner.store_arc();
    store.quiesce_persistence();
    if let Some((id, io)) = reply {
        io.respond(&Response::Done { id });
    }
    // ord: Release — every thread exits on its next state Acquire.
    inner.state.store(STOPPED, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_response, encode_request};

    /// Minimal blocking test client.
    struct TestClient {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    impl TestClient {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            TestClient {
                stream,
                buf: Vec::new(),
            }
        }

        fn send(&mut self, req: &Request) {
            let mut out = Vec::new();
            encode_request(req, &mut out);
            self.stream.write_all(&out).expect("send");
        }

        fn recv(&mut self) -> Response {
            let mut tmp = [0u8; 4096];
            loop {
                if let Some((resp, used)) = decode_response(&self.buf).expect("decode") {
                    self.buf.drain(..used);
                    return resp;
                }
                let n = self.stream.read(&mut tmp).expect("recv");
                assert!(n > 0, "server closed connection mid-response");
                self.buf.extend_from_slice(&tmp[..n]);
            }
        }

        fn roundtrip(&mut self, req: &Request) -> Response {
            self.send(req);
            self.recv()
        }
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            shards: 2,
            executors_per_shard: 2,
            conn_threads: 1,
            queue_depth: 32,
            epsilon: 16,
            log_size: 512,
            crash_sim: true,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn get_put_delete_scan_roundtrip() {
        let server = Server::start(quick_cfg(), "127.0.0.1:0").unwrap();
        let mut c = TestClient::connect(server.local_addr());
        assert_eq!(
            c.roundtrip(&Request::Get { id: 1, key: 7 }),
            Response::Value { id: 1, value: None }
        );
        assert_eq!(
            c.roundtrip(&Request::Put {
                id: 2,
                ack: AckLevel::Buffered,
                key: 7,
                value: 70
            }),
            Response::Done { id: 2 }
        );
        assert_eq!(
            c.roundtrip(&Request::Get { id: 3, key: 7 }),
            Response::Value {
                id: 3,
                value: Some(70)
            }
        );
        // Durable ack: must also come back (and survive; see crash tests).
        assert_eq!(
            c.roundtrip(&Request::Put {
                id: 4,
                ack: AckLevel::Durable,
                key: 8,
                value: 80
            }),
            Response::Done { id: 4 }
        );
        for k in 10..20u64 {
            c.roundtrip(&Request::Put {
                id: 100 + k,
                ack: AckLevel::Buffered,
                key: k,
                value: k * 2,
            });
        }
        match c.roundtrip(&Request::Scan {
            id: 5,
            start: 10,
            count: 10,
        }) {
            Response::Pairs { id: 5, pairs } => {
                assert_eq!(pairs.len(), 10);
                assert!(pairs.iter().all(|&(k, v)| v == k * 2));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            c.roundtrip(&Request::Delete {
                id: 6,
                ack: AckLevel::Durable,
                key: 7
            }),
            Response::Done { id: 6 }
        );
        assert_eq!(
            c.roundtrip(&Request::Get { id: 7, key: 7 }),
            Response::Value { id: 7, value: None }
        );
        let report = server.shutdown();
        assert!(report.requests >= 16);
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn admin_stats_reflects_store_metrics() {
        let server = Server::start(quick_cfg(), "127.0.0.1:0").unwrap();
        let mut c = TestClient::connect(server.local_addr());
        for k in 0..30u64 {
            c.roundtrip(&Request::Put {
                id: k,
                ack: AckLevel::Buffered,
                key: k,
                value: k,
            });
        }
        match c.roundtrip(&Request::Admin {
            id: 999,
            cmd: AdminCmd::Stats,
        }) {
            Response::Stats { id: 999, stats } => {
                assert_eq!(stats.epoch, 0);
                assert_eq!(stats.shards.len(), 2);
                let total: u64 = stats.shards.iter().map(|s| s.completed_tail).sum();
                assert_eq!(total, 30);
                assert!(stats.loss_bound > 0, "buffered store has a loss bound");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn admin_crash_recovers_and_keeps_serving() {
        let server = Server::start(quick_cfg(), "127.0.0.1:0").unwrap();
        let mut c = TestClient::connect(server.local_addr());
        // Durable-acked writes must survive the crash.
        for k in 0..10u64 {
            c.roundtrip(&Request::Put {
                id: k,
                ack: AckLevel::Durable,
                key: k,
                value: k + 1,
            });
        }
        assert_eq!(
            c.roundtrip(&Request::Admin {
                id: 77,
                cmd: AdminCmd::Crash,
            }),
            Response::Done { id: 77 }
        );
        assert_eq!(server.crash_count(), 1);
        for k in 0..10u64 {
            assert_eq!(
                c.roundtrip(&Request::Get {
                    id: 200 + k,
                    key: k
                }),
                Response::Value {
                    id: 200 + k,
                    value: Some(k + 1)
                },
                "durable-acked key {k} lost across crash"
            );
        }
        // Epoch advanced on the wire too.
        match c.roundtrip(&Request::Admin {
            id: 78,
            cmd: AdminCmd::Stats,
        }) {
            Response::Stats { stats, .. } => assert_eq!(stats.epoch, 1),
            other => panic!("unexpected {other:?}"),
        }
        // And the recovered store accepts new writes.
        assert_eq!(
            c.roundtrip(&Request::Put {
                id: 300,
                ack: AckLevel::Durable,
                key: 500,
                value: 1
            }),
            Response::Done { id: 300 }
        );
        server.shutdown();
    }

    #[test]
    fn crash_without_sim_reports_error() {
        let cfg = ServeConfig {
            crash_sim: false,
            ..quick_cfg()
        };
        let server = Server::start(cfg, "127.0.0.1:0").unwrap();
        let mut c = TestClient::connect(server.local_addr());
        assert_eq!(
            c.roundtrip(&Request::Admin {
                id: 1,
                cmd: AdminCmd::Crash,
            }),
            Response::Err {
                id: 1,
                code: err_code::NO_CRASH_SIM
            }
        );
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = Server::start(quick_cfg(), "127.0.0.1:0").unwrap();
        let mut c = TestClient::connect(server.local_addr());
        c.roundtrip(&Request::Put {
            id: 1,
            ack: AckLevel::Buffered,
            key: 1,
            value: 1,
        });
        assert_eq!(
            c.roundtrip(&Request::Admin {
                id: 2,
                cmd: AdminCmd::Shutdown,
            }),
            Response::Done { id: 2 }
        );
        let report = server.join();
        assert_eq!(report.completed_tails, report.durable_watermarks);
    }

    #[test]
    fn full_queue_sheds_with_retry() {
        // One executor, depth-1 queues: park the executors with a slow
        // first op? Ops are fast, so instead flood a pipeline faster than
        // one waiter check by writing many frames in one syscall.
        let cfg = ServeConfig {
            shards: 1,
            executors_per_shard: 1,
            queue_depth: 1,
            crash_sim: false,
            ..quick_cfg()
        };
        let server = Server::start(cfg, "127.0.0.1:0").unwrap();
        let mut c = TestClient::connect(server.local_addr());
        let mut out = Vec::new();
        const N: u64 = 400;
        for i in 0..N {
            encode_request(
                &Request::Put {
                    id: i,
                    ack: AckLevel::Buffered,
                    key: i,
                    value: i,
                },
                &mut out,
            );
        }
        c.stream.write_all(&out).unwrap();
        let mut done = 0u64;
        let mut retries = 0u64;
        for _ in 0..N {
            match c.recv() {
                Response::Done { .. } => done += 1,
                Response::Retry { .. } => retries += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(done + retries, N);
        assert!(done > 0, "some requests must get through");
        let report = server.shutdown();
        // The server-side retry counter matches what the wire saw.
        assert_eq!(report.retries, retries);
    }
}
