//! The sharded store and its cross-shard recovery orchestrator.

use std::collections::BTreeMap;
use std::sync::Arc;

use prep_pmem::{CrashToken, PersistentDirectory, PmemRuntime, PmemStatsSnapshot};
use prep_seqds::SequentialObject;
use prep_topology::ThreadAssignment;
use prep_uc::{CrashImage, PrepConfig, PrepUc, ThreadToken};

use crate::metrics::{ShardMetrics, StoreMetrics};
use crate::router::ShardRouter;

/// Directory root naming the persisted shard count.
const ROOT_SHARDS: &str = "prep-shard/shards";
/// Directory root counting completed recoveries (crash epochs survived).
const ROOT_EPOCH: &str = "prep-shard/epoch";

/// A worker's registration across every shard: one NR thread token per
/// shard, so the router can dispatch any operation without registering on
/// the fly. Obtain via [`ShardedStore::register`]; tokens are per-thread
/// (NR flat-combining slots are thread-owned) and must not be shared.
#[derive(Debug)]
pub struct ShardToken {
    worker: usize,
    tokens: Vec<ThreadToken>,
}

impl ShardToken {
    /// The worker index this token was registered for.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

/// Everything durable at the instant of a sharded power failure: one
/// consistent cut spanning the metadata directory and every shard's NVM
/// images. Produced by [`ShardedStore::simulate_crash`]; consumed by
/// [`ShardedStore::recover`].
pub struct ShardedCrashImage<T: SequentialObject> {
    /// The persisted metadata namespace (shard count, recovery epoch,
    /// per-shard roots).
    pub directory: BTreeMap<String, u64>,
    /// Per-shard crash images, indexed by shard.
    pub shards: Vec<CrashImage<T>>,
}

impl<T: SequentialObject> ShardedCrashImage<T> {
    /// The shard count recorded in the persisted directory, if present.
    pub fn persisted_shards(&self) -> Option<u64> {
        self.directory.get(ROOT_SHARDS).copied()
    }

    /// The recovery epoch recorded in the persisted directory (0 for a
    /// store that never crashed).
    pub fn epoch(&self) -> u64 {
        self.directory.get(ROOT_EPOCH).copied().unwrap_or(0)
    }
}

/// A hash-partitioned persistent store: N independent [`PrepUc`] shards
/// behind a key router, with single-cut cross-shard crash recovery.
///
/// See the crate docs for the design; in short, each shard has its own
/// operation log, replica set, flush boundary, and persistence thread, and
/// all shards share one [`PmemRuntime`] so a crash freezes every shard's
/// NVM image in the same consistent cut.
pub struct ShardedStore<T: SequentialObject> {
    shards: Vec<PrepUc<T>>,
    router: ShardRouter<T::Op>,
    assignment: ThreadAssignment,
    directory: Arc<PersistentDirectory>,
    /// `Some` when all shards share one runtime (required for crash
    /// capture); `None` in per-shard-runtime mode (benchmarking).
    shared_runtime: Option<Arc<PmemRuntime>>,
    epoch: u64,
}

impl<T: SequentialObject> ShardedStore<T> {
    /// Builds a store of `shards` partitions, each an independent PREP-UC
    /// over a copy of `obj`, all sharing `config.runtime` (one crash
    /// image). `key_fn` extracts the routing key from an operation.
    ///
    /// # Panics
    /// Panics if `shards` is zero or `config` violates PREP-UC's parameter
    /// constraints for this `assignment`.
    pub fn new(
        obj: T,
        shards: usize,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
    ) -> Self {
        let router = ShardRouter::new(shards, key_fn);
        let objs = (0..shards).map(|_| obj.clone_object()).collect();
        Self::build(objs, router, assignment, config, 0)
    }

    /// Like [`ShardedStore::new`], but gives every shard its **own**
    /// cost-only [`PmemRuntime`] (cloned from `config.runtime`'s latency
    /// model) so persistence counters can be attributed per shard.
    ///
    /// This mode cannot capture crashes — there is no single runtime to
    /// cut — so [`ShardedStore::simulate_crash`] panics; it exists for
    /// benchmarking ([`ShardedStore::stats_per_shard`]).
    pub fn with_per_shard_runtimes(
        obj: T,
        shards: usize,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
    ) -> Self {
        let router = ShardRouter::new(shards, key_fn);
        let latency = *config.runtime.latency();
        let shard_instances: Vec<PrepUc<T>> = (0..shards)
            .map(|_| {
                let cfg = config
                    .clone()
                    .with_runtime(PmemRuntime::for_benchmarks(latency));
                PrepUc::new(obj.clone_object(), assignment.clone(), cfg)
            })
            .collect();
        ShardedStore {
            shards: shard_instances,
            router,
            assignment,
            directory: Arc::new(PersistentDirectory::new()),
            shared_runtime: None,
            epoch: 0,
        }
    }

    /// Shared-runtime construction path for both `new` and `recover`.
    fn build(
        objs: Vec<T>,
        router: ShardRouter<T::Op>,
        assignment: ThreadAssignment,
        config: PrepConfig,
        epoch: u64,
    ) -> Self {
        let shards = objs.len();
        assert!(shards > 0, "a sharded store needs at least one shard");
        let runtime = Arc::clone(&config.runtime);
        let shard_instances: Vec<PrepUc<T>> = objs
            .into_iter()
            .map(|obj| PrepUc::new(obj, assignment.clone(), config.clone()))
            .collect();
        // Persist the metadata roots recovery will validate. One fence
        // after the batch: the roots are written once per store lifetime.
        let directory = Arc::new(PersistentDirectory::new());
        directory.persist_clflush(&runtime, ROOT_SHARDS, shards as u64);
        directory.persist_clflush(&runtime, ROOT_EPOCH, epoch);
        for s in 0..shards {
            let ns = format!("prep-shard/shard/{s}");
            directory.persist_clflush(&runtime, &PersistentDirectory::scope(&ns, "root"), s as u64);
        }
        runtime.sfence();
        ShardedStore {
            shards: shard_instances,
            router,
            assignment,
            directory,
            shared_runtime: Some(runtime),
            epoch,
        }
    }

    /// Registers worker `worker` with every shard, returning its per-shard
    /// token bundle.
    pub fn register(&self, worker: usize) -> ShardToken {
        ShardToken {
            worker,
            tokens: self.shards.iter().map(|s| s.register(worker)).collect(),
        }
    }

    /// Executes `op` on the shard its routing key selects, with that
    /// shard's full PREP-UC durability guarantee.
    pub fn execute(&self, token: &ShardToken, op: T::Op) -> T::Resp {
        let s = self.router.shard_of(&op);
        self.shards[s].execute(&token.tokens[s], op)
    }

    /// Executes `op` on **every** shard (in shard order), returning each
    /// shard's response — the broadcast path for aggregate operations that
    /// have no routing key (`Len`-style). The caller folds the responses;
    /// the broadcast is not atomic across shards.
    pub fn execute_all(&self, token: &ShardToken, op: T::Op) -> Vec<T::Resp> {
        self.shards
            .iter()
            .zip(&token.tokens)
            .map(|(shard, t)| shard.execute(t, op.clone()))
            .collect()
    }

    /// Executes `op` on a specific shard, bypassing the router
    /// (diagnostics and tests).
    pub fn execute_on(&self, shard: usize, token: &ShardToken, op: T::Op) -> T::Resp {
        self.shards[shard].execute(&token.tokens[shard], op)
    }

    /// The shard `op` routes to.
    pub fn shard_of(&self, op: &T::Op) -> usize {
        self.router.shard_of(op)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard's PREP-UC (diagnostics and tests).
    pub fn shard(&self, shard: usize) -> &PrepUc<T> {
        &self.shards[shard]
    }

    /// The router in use.
    pub fn router(&self) -> &ShardRouter<T::Op> {
        &self.router
    }

    /// The thread assignment every shard was built with.
    pub fn assignment(&self) -> &ThreadAssignment {
        &self.assignment
    }

    /// The persisted metadata directory.
    pub fn directory(&self) -> &PersistentDirectory {
        &self.directory
    }

    /// Recovery epoch: how many crash→recover cycles produced this
    /// instance (0 for a fresh store).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Worst-case completed-update loss for a single crash across the
    /// whole store: the sum of every shard's bound — `N·(ε + β − 1)` in
    /// buffered mode, 0 in durable mode.
    pub fn loss_bound(&self) -> u64 {
        self.shards.iter().map(|s| s.loss_bound()).sum()
    }

    /// Per-shard persistence-counter snapshots. Meaningful attribution
    /// requires [`ShardedStore::with_per_shard_runtimes`]; in shared-
    /// runtime mode every entry reads the same global counters.
    pub fn stats_per_shard(&self) -> Vec<PmemStatsSnapshot> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Every shard's `completedTail` (total completed updates per shard).
    pub fn completed_tails(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.completed_tail()).collect()
    }

    /// Read-only operations that missed the zero-contention read fast path,
    /// summed over every shard's replicas (see [`PrepUc::read_slow_paths`]).
    pub fn read_slow_paths(&self) -> u64 {
        self.shards.iter().map(|s| s.read_slow_paths()).sum()
    }

    /// Validated optimistic (lock-free) fast-path reads, summed over every
    /// shard's replicas (see [`PrepUc::read_fast_optimistic`]).
    pub fn read_fast_optimistic(&self) -> u64 {
        self.shards.iter().map(|s| s.read_fast_optimistic()).sum()
    }

    /// Optimistic reads that failed seqlock validation, summed over every
    /// shard's replicas (see [`PrepUc::read_validation_failures`]).
    pub fn read_validation_failures(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read_validation_failures())
            .sum()
    }

    /// The shared runtime, when the store was built with one.
    pub fn shared_runtime(&self) -> Option<&Arc<PmemRuntime>> {
        self.shared_runtime.as_ref()
    }

    /// Every shard's crash-survivability watermark (see
    /// [`PrepUc::durable_watermark`]).
    pub fn durable_watermarks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.durable_watermark()).collect()
    }

    /// Asks every shard's persistence thread to checkpoint now instead of
    /// waiting out its ε window (see [`PrepUc::nudge_checkpoint`]).
    pub fn nudge_checkpoints(&self) {
        for s in &self.shards {
            s.nudge_checkpoint();
        }
    }

    /// Blocks until every shard's watermark covers its `completedTail` —
    /// after this, a crash loses nothing that had completed before the
    /// call. Intended for drain/shutdown paths; see
    /// [`PrepUc::quiesce_persistence`] for semantics under concurrent
    /// writers.
    pub fn quiesce_persistence(&self) {
        for s in &self.shards {
            s.quiesce_persistence();
        }
    }

    /// One consolidated snapshot of every shard's observable state — the
    /// single source for serve's ADMIN verb and `prep-bench`'s per-shard
    /// lanes (both used to hand-roll this zip).
    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            epoch: self.epoch,
            loss_bound: self.loss_bound(),
            shared_counters: self.shared_runtime.is_some(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardMetrics {
                    shard: i,
                    completed_tail: s.completed_tail(),
                    durable_watermark: s.durable_watermark(),
                    read_slow_paths: s.read_slow_paths(),
                    read_fast_optimistic: s.read_fast_optimistic(),
                    read_validation_failures: s.read_validation_failures(),
                    stats: s.stats(),
                })
                .collect(),
        }
    }

    /// Simulates a full-system power failure: one consistent cut frozen
    /// across the metadata directory and **all** shards' NVM images
    /// simultaneously. No shard-by-shard skew is possible — this is the
    /// orchestrator's reason to exist.
    ///
    /// # Panics
    /// Panics in per-shard-runtime mode, or if the shared runtime was not
    /// created with crash simulation enabled.
    pub fn simulate_crash(&self) -> (CrashToken, ShardedCrashImage<T>) {
        let runtime = self
            .shared_runtime
            .as_ref()
            .expect("simulate_crash requires a shared runtime (ShardedStore::new)");
        runtime.capture_cut(|| ShardedCrashImage {
            directory: self.directory.snapshot_for_recovery(runtime),
            shards: self.shards.iter().map(|s| s.crash_image_in_cut()).collect(),
        })
    }

    /// The cross-shard recovery procedure: rebuilds every shard from one
    /// [`ShardedCrashImage`].
    ///
    /// 1. Validate the persisted layout: the directory's shard count must
    ///    exist and match the number of captured shard images (a mismatch
    ///    means the image is not a cut of one store — refusing is the
    ///    recovery-safety property).
    /// 2. Recover each shard independently via [`PrepUc::recover`] (§5.1 /
    ///    §5.2 per shard), all sharing `config.runtime` again.
    /// 3. Re-persist the metadata roots with the recovery epoch advanced.
    ///
    /// The recovered store routes with `key_fn` over the **persisted**
    /// shard count, so keys keep mapping to the shards that own their
    /// history.
    ///
    /// # Panics
    /// Panics if the image's persisted layout is missing or inconsistent.
    pub fn recover(
        token: CrashToken,
        image: ShardedCrashImage<T>,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
    ) -> Self {
        let persisted = image
            .persisted_shards()
            .expect("crash image has no persisted shard count: not a prep-shard pool");
        assert_eq!(
            persisted as usize,
            image.shards.len(),
            "persisted shard count {} disagrees with {} captured shard images: \
             refusing to recover an inconsistent layout",
            persisted,
            image.shards.len()
        );
        let epoch = image.epoch() + 1;
        let router = ShardRouter::new(persisted as usize, key_fn);

        // Recover each shard's object state (stable replica + durable log
        // replay) without spawning instances yet, then build them all
        // against the shared runtime.
        let recovered: Vec<PrepUc<T>> = image
            .shards
            .into_iter()
            .map(|img| PrepUc::recover(token, img, assignment.clone(), config.clone()))
            .collect();
        let runtime = Arc::clone(&config.runtime);
        let directory = Arc::new(PersistentDirectory::new());
        directory.persist_clflush(&runtime, ROOT_SHARDS, persisted);
        directory.persist_clflush(&runtime, ROOT_EPOCH, epoch);
        for s in 0..persisted {
            let ns = format!("prep-shard/shard/{s}");
            directory.persist_clflush(&runtime, &PersistentDirectory::scope(&ns, "root"), s);
        }
        runtime.sfence();
        ShardedStore {
            shards: recovered,
            router: router.with_shards(persisted as usize),
            assignment,
            directory,
            shared_runtime: Some(runtime),
            epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
    use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
    use prep_topology::Topology;
    use prep_uc::DurabilityLevel;

    fn cfg(level: DurabilityLevel) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(32)
            .with_runtime(PmemRuntime::for_crash_tests())
    }

    fn map_key(op: &MapOp) -> u64 {
        match *op {
            MapOp::Insert { key, .. }
            | MapOp::Remove { key }
            | MapOp::Get { key }
            | MapOp::Contains { key } => key,
            MapOp::Len => 0,
        }
    }

    fn record_key(op: &RecorderOp) -> u64 {
        match *op {
            RecorderOp::Record(id) => id,
            RecorderOp::Count | RecorderOp::Last => 0,
        }
    }

    #[test]
    fn roundtrip_across_shards_and_aggregate_len() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            HashMap::new(),
            4,
            asg,
            cfg(DurabilityLevel::Buffered),
            map_key,
        );
        let t = store.register(0);
        for k in 0..100u64 {
            store.execute(
                &t,
                MapOp::Insert {
                    key: k,
                    value: k * 3,
                },
            );
        }
        for k in 0..100u64 {
            assert_eq!(
                store.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k * 3))
            );
        }
        // Keys actually spread across all four logs. Gets are read-only
        // and bypass the log, so only the 100 inserts appear in the tails.
        let tails = store.completed_tails();
        assert_eq!(tails.iter().sum::<u64>(), 100);
        // The broadcast aggregate sums per-shard lengths.
        let total: usize = store
            .execute_all(&t, MapOp::Len)
            .into_iter()
            .map(|r| match r {
                MapResp::Len(n) => n,
                other => panic!("unexpected {other:?}"),
            })
            .sum();
        assert_eq!(total, 100);
        assert!(
            tails.iter().all(|&t| t > 0),
            "a shard got no traffic: {tails:?}"
        );
    }

    #[test]
    fn concurrent_workers_complete_everything() {
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 200;
        let asg = Topology::small().assign_workers(THREADS);
        let store = Arc::new(ShardedStore::new(
            Recorder::new(),
            2,
            asg,
            cfg(DurabilityLevel::Durable),
            record_key,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let t = store.register(w);
                    for i in 0..PER_THREAD {
                        store.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            store.completed_tails().iter().sum::<u64>(),
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn combined_loss_bound_is_n_times_per_shard() {
        let asg = Topology::small().assign_workers(3); // β = 2
        let store = ShardedStore::new(
            Recorder::new(),
            4,
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(10),
            record_key,
        );
        assert_eq!(store.loss_bound(), 4 * 11); // N·(ε + β − 1)
        let durable = ShardedStore::new(
            Recorder::new(),
            4,
            Topology::small().assign_workers(3),
            cfg(DurabilityLevel::Durable),
            record_key,
        );
        assert_eq!(durable.loss_bound(), 0);
    }

    #[test]
    fn sharded_crash_recovers_per_shard_prefixes_durable_exact() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            Recorder::new(),
            3,
            asg.clone(),
            cfg(DurabilityLevel::Durable),
            record_key,
        );
        let t = store.register(0);
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for i in 0..200u64 {
            let s = store.shard_of(&RecorderOp::Record(i));
            store.execute(&t, RecorderOp::Record(i));
            per_shard[s].push(i);
        }
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec =
            ShardedStore::recover(token, image, asg, cfg(DurabilityLevel::Durable), record_key);
        assert_eq!(rec.epoch(), 1);
        assert_eq!(rec.shards(), 3);
        for (s, issued) in per_shard.iter().enumerate() {
            let hist = rec.shard(s).with_replica(0, |r| r.history().to_vec());
            assert_eq!(&hist, issued, "durable shard {s} must lose nothing");
        }
    }

    #[test]
    fn sharded_crash_buffered_loses_within_combined_bound() {
        let eps = 8u64;
        let asg = Topology::small().assign_workers(1);
        let config = cfg(DurabilityLevel::Buffered).with_epsilon(eps);
        let store = ShardedStore::new(Recorder::new(), 4, asg.clone(), config.clone(), record_key);
        let t = store.register(0);
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for i in 0..300u64 {
            let s = store.shard_of(&RecorderOp::Record(i));
            store.execute(&t, RecorderOp::Record(i));
            per_shard[s].push(i);
        }
        let bound = store.loss_bound();
        assert_eq!(bound, 4 * eps); // β = 1 ⇒ per-shard ε + β − 1 = ε
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec = ShardedStore::recover(token, image, asg, config, record_key);
        let mut total_lost = 0u64;
        for (s, issued) in per_shard.iter().enumerate() {
            let hist = rec.shard(s).with_replica(0, |r| r.history().to_vec());
            let kept = assert_prefix(&hist, issued);
            total_lost += (issued.len() - kept) as u64;
        }
        assert!(
            total_lost <= bound,
            "lost {total_lost} > combined bound {bound}"
        );
    }

    #[test]
    fn recovered_store_keeps_serving_with_same_routing() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            HashMap::new(),
            2,
            asg.clone(),
            cfg(DurabilityLevel::Durable),
            map_key,
        );
        let t = store.register(0);
        for k in 0..50u64 {
            store.execute(
                &t,
                MapOp::Insert {
                    key: k,
                    value: k + 1,
                },
            );
        }
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec = ShardedStore::recover(token, image, asg, cfg(DurabilityLevel::Durable), map_key);
        let t = rec.register(0);
        for k in 0..50u64 {
            assert_eq!(
                rec.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k + 1)),
                "key {k} must be found on its original shard after recovery"
            );
        }
        // And the store accepts new writes post-recovery.
        rec.execute(&t, MapOp::Insert { key: 999, value: 1 });
        assert_eq!(
            rec.execute(&t, MapOp::Get { key: 999 }),
            MapResp::Value(Some(1))
        );
    }

    #[test]
    fn directory_roots_are_persisted_and_epoch_advances() {
        let asg = Topology::small().assign_workers(1);
        let config = cfg(DurabilityLevel::Buffered);
        let store = ShardedStore::new(Recorder::new(), 2, asg.clone(), config.clone(), record_key);
        assert_eq!(store.directory().read(ROOT_SHARDS), Some(2));
        assert_eq!(store.directory().read(ROOT_EPOCH), Some(0));
        assert_eq!(store.directory().read("prep-shard/shard/1/root"), Some(1));
        let (token, image) = store.simulate_crash();
        assert_eq!(image.persisted_shards(), Some(2));
        assert_eq!(image.epoch(), 0);
        drop(store);
        let rec = ShardedStore::recover(token, image, asg.clone(), config.clone(), record_key);
        assert_eq!(rec.epoch(), 1);
        assert_eq!(rec.directory().read(ROOT_EPOCH), Some(1));
        // A second crash epoch keeps counting.
        let (token, image) = rec.simulate_crash();
        drop(rec);
        let rec2 = ShardedStore::recover(token, image, asg, config, record_key);
        assert_eq!(rec2.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "refusing to recover")]
    fn recovery_rejects_inconsistent_shard_layout() {
        let asg = Topology::small().assign_workers(1);
        let config = cfg(DurabilityLevel::Buffered);
        let store = ShardedStore::new(Recorder::new(), 2, asg.clone(), config.clone(), record_key);
        let (token, mut image) = store.simulate_crash();
        drop(store);
        image.shards.pop(); // lose a shard's image
        let _ = ShardedStore::recover(token, image, asg, config, record_key);
    }

    #[test]
    #[should_panic(expected = "requires a shared runtime")]
    fn per_shard_runtime_mode_cannot_capture_crashes() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::with_per_shard_runtimes(
            Recorder::new(),
            2,
            asg,
            cfg(DurabilityLevel::Buffered),
            record_key,
        );
        let _ = store.simulate_crash();
    }

    #[test]
    fn metrics_snapshot_and_quiesce_cover_all_shards() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            HashMap::new(),
            3,
            asg.clone(),
            cfg(DurabilityLevel::Buffered).with_epsilon(64),
            map_key,
        );
        let before = store.metrics();
        assert_eq!(before.shards.len(), 3);
        assert!(before.shared_counters);
        assert_eq!(before.total_completed(), 0);
        let t = store.register(0);
        for k in 0..60u64 {
            store.execute(&t, MapOp::Insert { key: k, value: k });
        }
        // ε = 64 > per-shard op counts: only a quiesce forces the
        // checkpoints that raise the watermarks to the tails.
        store.quiesce_persistence();
        let m = store.metrics().delta(&before);
        assert_eq!(m.total_completed(), 60);
        for s in &m.shards {
            assert!(s.completed_tail > 0, "shard {} got no traffic", s.shard);
        }
        let now = store.metrics();
        for s in &now.shards {
            assert_eq!(
                s.durable_watermark, s.completed_tail,
                "quiesce left shard {} short",
                s.shard
            );
        }
        // Zero buffered loss after quiesce: the recovered store holds every
        // completed op even though the store ran in buffered mode.
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec = ShardedStore::recover(
            token,
            image,
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(64),
            map_key,
        );
        let t = rec.register(0);
        for k in 0..60u64 {
            assert_eq!(
                rec.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k)),
                "key {k} lost despite a quiesced (clean) shutdown"
            );
        }
    }

    #[test]
    fn per_shard_runtimes_attribute_stats_to_the_loaded_shard() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::with_per_shard_runtimes(
            Recorder::new(),
            2,
            asg,
            cfg(DurabilityLevel::Durable),
            record_key,
        );
        let t = store.register(0);
        // Drive updates onto exactly one shard via execute_on.
        for i in 0..100u64 {
            store.execute_on(1, &t, RecorderOp::Record(i));
        }
        prep_sync::spin_until(|| store.shard(1).completed_tail() >= 100);
        let stats = store.stats_per_shard();
        assert!(
            stats[1].total_flushes() > 0,
            "loaded shard must show flush traffic: {stats:?}"
        );
        assert!(
            stats[1].total_flushes() > stats[0].total_flushes(),
            "idle shard 0 must not absorb shard 1's counters: {stats:?}"
        );
    }
}
