//! The sharded store and its cross-shard recovery orchestrator.

use std::collections::BTreeMap;
use std::sync::Arc;

use prep_pmem::{CrashToken, PersistentDirectory, PmemRuntime, PmemStatsSnapshot};
use prep_seqds::SequentialObject;
use prep_topology::ThreadAssignment;
use prep_uc::{
    CrashImage, LaneRouter, MlCrashImage, MlToken, MultiLogUc, PrepConfig, PrepUc, ThreadToken,
};

use crate::metrics::{ShardMetrics, StoreMetrics};
use crate::router::{lane_index, ShardRouter};

/// Directory root naming the persisted shard count.
const ROOT_SHARDS: &str = "prep-shard/shards";
/// Directory root naming the persisted logs-per-shard count (1 for
/// single-log shards).
const ROOT_LANES: &str = "prep-shard/lanes";
/// Directory root counting completed recoveries (crash epochs survived).
const ROOT_EPOCH: &str = "prep-shard/epoch";

/// One shard's universal construction: the classic single-log PREP-UC, or
/// the multi-log (persistent CNR) construction with `lanes` logs.
enum Backend<T: SequentialObject> {
    Single(PrepUc<T>),
    Multi(MultiLogUc<T>),
}

/// One shard's registration, matching its backend kind.
#[derive(Debug)]
enum TokenKind {
    Single(ThreadToken),
    Multi(MlToken),
}

/// A worker's registration across every shard: one thread token per
/// shard, so the router can dispatch any operation without registering on
/// the fly. Obtain via [`ShardedStore::register`]; tokens are per-thread
/// (flat-combining slots are thread-owned) and must not be shared.
#[derive(Debug)]
pub struct ShardToken {
    worker: usize,
    tokens: Vec<TokenKind>,
}

impl ShardToken {
    /// The worker index this token was registered for.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

/// One shard's crash image, matching its backend kind.
pub enum ShardImage<T: SequentialObject> {
    /// A single-log shard's image.
    Single(CrashImage<T>),
    /// A multi-log shard's image (cut **vector**; see
    /// [`prep_uc::MlCrashImage`]).
    Multi(MlCrashImage<T>),
}

/// Everything durable at the instant of a sharded power failure: one
/// consistent cut spanning the metadata directory and every shard's NVM
/// images — including, for multi-log shards, every *log's* image inside
/// the same cut. Produced by [`ShardedStore::simulate_crash`]; consumed by
/// [`ShardedStore::recover`] / [`ShardedStore::recover_multilog`].
pub struct ShardedCrashImage<T: SequentialObject> {
    /// The persisted metadata namespace (shard count, lanes per shard,
    /// recovery epoch, per-shard roots).
    pub directory: BTreeMap<String, u64>,
    /// Per-shard crash images, indexed by shard.
    pub shards: Vec<ShardImage<T>>,
}

impl<T: SequentialObject> ShardedCrashImage<T> {
    /// The shard count recorded in the persisted directory, if present.
    pub fn persisted_shards(&self) -> Option<u64> {
        self.directory.get(ROOT_SHARDS).copied()
    }

    /// The logs-per-shard count recorded in the persisted directory (1
    /// for stores that predate multi-log shards).
    pub fn persisted_lanes(&self) -> u64 {
        self.directory.get(ROOT_LANES).copied().unwrap_or(1)
    }

    /// The recovery epoch recorded in the persisted directory (0 for a
    /// store that never crashed).
    pub fn epoch(&self) -> u64 {
        self.directory.get(ROOT_EPOCH).copied().unwrap_or(0)
    }
}

/// Cross-log classifier: `true` sends the op down its shard's ordered
/// cross-log path (see [`ShardedStore::new_multilog`]).
type CrossFn<T> = Arc<dyn Fn(&<T as SequentialObject>::Op) -> bool + Send + Sync>;

/// Cross-log response fold: combines one response per lane into the op's
/// final response (see [`ShardedStore::new_multilog`]).
type FoldFn<T> = Arc<
    dyn Fn(
            &<T as SequentialObject>::Op,
            Vec<<T as SequentialObject>::Resp>,
        ) -> <T as SequentialObject>::Resp
        + Send
        + Sync,
>;

/// A hash-partitioned persistent store: N independent PREP-UC shards —
/// each optionally multi-log ([`MultiLogUc`], persistent CNR) — behind a
/// key router, with single-cut cross-shard crash recovery.
///
/// See the crate docs for the design; in short, each shard has its own
/// operation log(s), replica set, flush boundary, and persistence thread,
/// and all shards share one [`PmemRuntime`] so a crash freezes every
/// shard's — and every log's — NVM image in the same consistent cut.
pub struct ShardedStore<T: SequentialObject> {
    shards: Vec<Backend<T>>,
    router: ShardRouter<T::Op>,
    assignment: ThreadAssignment,
    directory: Arc<PersistentDirectory>,
    /// `Some` when all shards share one runtime (required for crash
    /// capture); `None` in per-shard-runtime mode (benchmarking).
    shared_runtime: Option<Arc<PmemRuntime>>,
    epoch: u64,
}

impl<T: SequentialObject> ShardedStore<T> {
    /// Builds a store of `shards` single-log partitions, each an
    /// independent PREP-UC over a copy of `obj`, all sharing
    /// `config.runtime` (one crash image). `key_fn` extracts the routing
    /// key from an operation.
    ///
    /// # Panics
    /// Panics if `shards` is zero or `config` violates PREP-UC's parameter
    /// constraints for this `assignment`.
    pub fn new(
        obj: T,
        shards: usize,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
    ) -> Self {
        let router = ShardRouter::new(shards, key_fn);
        let objs = (0..shards).map(|_| obj.clone_object()).collect();
        Self::build(objs, router, assignment, config, 0)
    }

    /// Builds a store of `shards` **multi-log** partitions: each shard is
    /// a [`MultiLogUc`] with `lanes` logs, so update throughput scales
    /// with `shards × lanes` combiners instead of `shards`.
    ///
    /// Routing subsumption: `key_fn` is hashed **once** per op; the shard
    /// is the hash's low digit and the lane the next
    /// ([`crate::router::lane_index`]), so the per-shard lane routers
    /// provably partition by the same key as the shard router. `cross`
    /// classifies operations that touch more than one key's partition
    /// (scans, multi-key updates): inside a shard they take the ordered
    /// cross-log path, and `fold` merges their per-lane responses.
    ///
    /// # Panics
    /// Panics if `shards` is zero, `lanes` is outside
    /// `1..=`[`prep_uc::MAX_LOGS`], or `config` violates
    /// `ε ≤ LOG_SIZE − β − 1` with `β = assignment.workers()`.
    #[allow(clippy::too_many_arguments)] // the three closures are the API
    pub fn new_multilog(
        obj: T,
        shards: usize,
        lanes: usize,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
        cross: impl Fn(&T::Op) -> bool + Send + Sync + 'static,
        fold: impl Fn(&T::Op, Vec<T::Resp>) -> T::Resp + Send + Sync + 'static,
    ) -> Self {
        let router = ShardRouter::new(shards, key_fn).with_lanes(lanes);
        let objs = (0..shards).map(|_| obj.clone_object()).collect();
        Self::build_multilog(
            objs,
            router,
            assignment,
            config,
            Arc::new(cross),
            Arc::new(fold),
            0,
        )
    }

    /// Like [`ShardedStore::new`], but gives every shard its **own**
    /// cost-only [`PmemRuntime`] (cloned from `config.runtime`'s latency
    /// model) so persistence counters can be attributed per shard.
    ///
    /// This mode cannot capture crashes — there is no single runtime to
    /// cut — so [`ShardedStore::simulate_crash`] panics; it exists for
    /// benchmarking ([`ShardedStore::stats_per_shard`]).
    pub fn with_per_shard_runtimes(
        obj: T,
        shards: usize,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
    ) -> Self {
        let router = ShardRouter::new(shards, key_fn);
        let latency = *config.runtime.latency();
        let shard_instances: Vec<Backend<T>> = (0..shards)
            .map(|_| {
                let cfg = config
                    .clone()
                    .with_runtime(PmemRuntime::for_benchmarks(latency));
                Backend::Single(PrepUc::new(obj.clone_object(), assignment.clone(), cfg))
            })
            .collect();
        ShardedStore {
            shards: shard_instances,
            router,
            assignment,
            directory: Arc::new(PersistentDirectory::new()),
            shared_runtime: None,
            epoch: 0,
        }
    }

    /// Shared-runtime construction path for both `new` and `recover`.
    fn build(
        objs: Vec<T>,
        router: ShardRouter<T::Op>,
        assignment: ThreadAssignment,
        config: PrepConfig,
        epoch: u64,
    ) -> Self {
        let runtime = Arc::clone(&config.runtime);
        let shard_instances: Vec<Backend<T>> = objs
            .into_iter()
            .map(|obj| Backend::Single(PrepUc::new(obj, assignment.clone(), config.clone())))
            .collect();
        Self::assemble(shard_instances, router, assignment, runtime, epoch)
    }

    /// Shared-runtime construction path for `new_multilog` and
    /// `recover_multilog`. `lane_states` is `None` for a fresh store
    /// (every lane clones its shard's object) or per-shard recovered lane
    /// states.
    #[allow(clippy::too_many_arguments)] // internal plumbing
    fn build_multilog(
        objs: Vec<T>,
        router: ShardRouter<T::Op>,
        assignment: ThreadAssignment,
        config: PrepConfig,
        cross: CrossFn<T>,
        fold: FoldFn<T>,
        epoch: u64,
    ) -> Self {
        let shards = objs.len();
        let lanes = router.lanes();
        let max_workers = assignment.workers();
        let runtime = Arc::clone(&config.runtime);
        let shard_instances: Vec<Backend<T>> = objs
            .into_iter()
            .map(|obj| {
                Backend::Multi(MultiLogUc::new(
                    obj,
                    Self::lane_router(&router, &cross, &fold, shards),
                    lanes,
                    max_workers,
                    config.clone(),
                ))
            })
            .collect();
        Self::assemble(shard_instances, router, assignment, runtime, epoch)
    }

    /// The per-shard lane router: same key function, same hash, next
    /// mixed-radix digit (see [`crate::router`] docs).
    fn lane_router(
        router: &ShardRouter<T::Op>,
        cross: &CrossFn<T>,
        fold: &FoldFn<T>,
        shards: usize,
    ) -> LaneRouter<T> {
        let key_fn = router.key_fn();
        let cross = Arc::clone(cross);
        let fold = Arc::clone(fold);
        LaneRouter::new(
            move |op, lanes| {
                if cross(op) {
                    None
                } else {
                    Some(lane_index(key_fn(op), shards, lanes))
                }
            },
            move |op, resps| fold(op, resps),
        )
    }

    /// Persists the layout roots and assembles the store.
    fn assemble(
        shard_instances: Vec<Backend<T>>,
        router: ShardRouter<T::Op>,
        assignment: ThreadAssignment,
        runtime: Arc<PmemRuntime>,
        epoch: u64,
    ) -> Self {
        let shards = shard_instances.len();
        assert!(shards > 0, "a sharded store needs at least one shard");
        // Persist the metadata roots recovery will validate. One fence
        // after the batch: the roots are written once per store lifetime.
        let directory = Arc::new(PersistentDirectory::new());
        directory.persist_clflush(&runtime, ROOT_SHARDS, shards as u64);
        directory.persist_clflush(&runtime, ROOT_LANES, router.lanes() as u64);
        directory.persist_clflush(&runtime, ROOT_EPOCH, epoch);
        for s in 0..shards {
            let ns = format!("prep-shard/shard/{s}");
            directory.persist_clflush(&runtime, &PersistentDirectory::scope(&ns, "root"), s as u64);
        }
        runtime.sfence();
        ShardedStore {
            shards: shard_instances,
            router,
            assignment,
            directory,
            shared_runtime: Some(runtime),
            epoch,
        }
    }

    /// Registers worker `worker` with every shard, returning its per-shard
    /// token bundle.
    pub fn register(&self, worker: usize) -> ShardToken {
        ShardToken {
            worker,
            tokens: self
                .shards
                .iter()
                .map(|s| match s {
                    Backend::Single(uc) => TokenKind::Single(uc.register(worker)),
                    Backend::Multi(uc) => TokenKind::Multi(uc.register(worker)),
                })
                .collect(),
        }
    }

    /// Executes `op` on the shard its routing key selects, with that
    /// shard's full PREP-UC durability guarantee. On a multi-log shard the
    /// op continues to its lane (same hash, next digit) or — if classified
    /// cross-log — through the ordered cross-log path.
    pub fn execute(&self, token: &ShardToken, op: T::Op) -> T::Resp {
        let s = self.router.shard_of(&op);
        self.execute_on(s, token, op)
    }

    /// Executes `op` on **every** shard (in shard order), returning each
    /// shard's response — the broadcast path for aggregate operations that
    /// have no routing key (`Len`-style). The caller folds the responses;
    /// the broadcast is not atomic across shards (within a multi-log
    /// shard, a cross-log op *is* atomic across that shard's logs).
    pub fn execute_all(&self, token: &ShardToken, op: T::Op) -> Vec<T::Resp> {
        (0..self.shards.len())
            .map(|s| self.execute_on(s, token, op.clone()))
            .collect()
    }

    /// Executes `op` on a specific shard, bypassing the shard router
    /// (diagnostics, tests, and the broadcast path).
    pub fn execute_on(&self, shard: usize, token: &ShardToken, op: T::Op) -> T::Resp {
        match (&self.shards[shard], &token.tokens[shard]) {
            (Backend::Single(uc), TokenKind::Single(t)) => uc.execute(t, op),
            (Backend::Multi(uc), TokenKind::Multi(t)) => uc.execute(t, op),
            _ => unreachable!("shard token kind mismatch: token from another store"),
        }
    }

    /// The shard `op` routes to.
    pub fn shard_of(&self, op: &T::Op) -> usize {
        self.router.shard_of(op)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Logs per shard (1 for single-log stores).
    pub fn lanes(&self) -> usize {
        self.router.lanes()
    }

    /// Direct access to one shard's single-log PREP-UC (diagnostics and
    /// tests).
    ///
    /// # Panics
    /// Panics on a multi-log store; use [`ShardedStore::multilog_shard`].
    pub fn shard(&self, shard: usize) -> &PrepUc<T> {
        match &self.shards[shard] {
            Backend::Single(uc) => uc,
            Backend::Multi(_) => panic!("shard {shard} is multi-log; use multilog_shard"),
        }
    }

    /// Direct access to one shard's multi-log construction (diagnostics
    /// and tests).
    ///
    /// # Panics
    /// Panics on a single-log store; use [`ShardedStore::shard`].
    pub fn multilog_shard(&self, shard: usize) -> &MultiLogUc<T> {
        match &self.shards[shard] {
            Backend::Multi(uc) => uc,
            Backend::Single(_) => panic!("shard {shard} is single-log; use shard"),
        }
    }

    /// The router in use.
    pub fn router(&self) -> &ShardRouter<T::Op> {
        &self.router
    }

    /// The thread assignment every shard was built with.
    pub fn assignment(&self) -> &ThreadAssignment {
        &self.assignment
    }

    /// The persisted metadata directory.
    pub fn directory(&self) -> &PersistentDirectory {
        &self.directory
    }

    /// Recovery epoch: how many crash→recover cycles produced this
    /// instance (0 for a fresh store).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Worst-case completed-update loss for a single crash across the
    /// whole store: the sum of every shard's bound — `N·(ε + β − 1)` for
    /// single-log shards, `N·L·(ε + β − 1)` for multi-log shards, 0 in
    /// durable mode.
    pub fn loss_bound(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.loss_bound(),
                Backend::Multi(uc) => uc.loss_bound(),
            })
            .sum()
    }

    /// Per-shard persistence-counter snapshots. Meaningful attribution
    /// requires [`ShardedStore::with_per_shard_runtimes`]; in shared-
    /// runtime mode every entry reads the same global counters.
    pub fn stats_per_shard(&self) -> Vec<PmemStatsSnapshot> {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.stats(),
                Backend::Multi(uc) => uc.stats(),
            })
            .collect()
    }

    /// Every shard's total completed updates (summed over a multi-log
    /// shard's logs).
    pub fn completed_tails(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.completed_tail(),
                Backend::Multi(uc) => uc.completed_vector().iter().sum(),
            })
            .collect()
    }

    /// Read-only operations that missed the zero-contention read fast path,
    /// summed over every shard's replicas (see [`PrepUc::read_slow_paths`];
    /// multi-log shards' trylock read path has no such counter and
    /// contributes 0).
    pub fn read_slow_paths(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.read_slow_paths(),
                Backend::Multi(_) => 0,
            })
            .sum()
    }

    /// Validated optimistic (lock-free) fast-path reads, summed over every
    /// shard's replicas (see [`PrepUc::read_fast_optimistic`]).
    pub fn read_fast_optimistic(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.read_fast_optimistic(),
                Backend::Multi(_) => 0,
            })
            .sum()
    }

    /// Optimistic reads that failed seqlock validation, summed over every
    /// shard's replicas (see [`PrepUc::read_validation_failures`]).
    pub fn read_validation_failures(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.read_validation_failures(),
                Backend::Multi(_) => 0,
            })
            .sum()
    }

    /// The shared runtime, when the store was built with one.
    pub fn shared_runtime(&self) -> Option<&Arc<PmemRuntime>> {
        self.shared_runtime.as_ref()
    }

    /// Every shard's crash-survivability watermark (summed over a
    /// multi-log shard's logs, mirroring [`ShardedStore::completed_tails`]).
    pub fn durable_watermarks(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| match s {
                Backend::Single(uc) => uc.durable_watermark(),
                Backend::Multi(uc) => (0..uc.lanes()).map(|l| uc.durable_watermark(l)).sum(),
            })
            .collect()
    }

    /// Asks every shard's persistence thread to checkpoint now instead of
    /// waiting out its ε window (see [`PrepUc::nudge_checkpoint`]).
    pub fn nudge_checkpoints(&self) {
        for s in &self.shards {
            match s {
                Backend::Single(uc) => uc.nudge_checkpoint(),
                Backend::Multi(uc) => uc.nudge_checkpoint(),
            }
        }
    }

    /// Blocks until every shard's watermark covers its `completedTail` —
    /// per log, for multi-log shards — after which a crash loses nothing
    /// that had completed before the call. Intended for drain/shutdown
    /// paths; see [`PrepUc::quiesce_persistence`] for semantics under
    /// concurrent writers.
    pub fn quiesce_persistence(&self) {
        for s in &self.shards {
            match s {
                Backend::Single(uc) => uc.quiesce_persistence(),
                Backend::Multi(uc) => uc.quiesce_persistence(),
            }
        }
    }

    /// One consolidated snapshot of every shard's observable state — the
    /// single source for serve's ADMIN verb and `prep-bench`'s per-shard
    /// lanes. Multi-log shards report per-log completed tails, watermarks,
    /// and combine-round counters; single-log shards report empty lane
    /// vectors.
    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            epoch: self.epoch,
            loss_bound: self.loss_bound(),
            shared_counters: self.shared_runtime.is_some(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| match s {
                    Backend::Single(uc) => ShardMetrics {
                        shard: i,
                        completed_tail: uc.completed_tail(),
                        durable_watermark: uc.durable_watermark(),
                        read_slow_paths: uc.read_slow_paths(),
                        read_fast_optimistic: uc.read_fast_optimistic(),
                        read_validation_failures: uc.read_validation_failures(),
                        lane_completed_tails: Vec::new(),
                        lane_durable_watermarks: Vec::new(),
                        lane_combine_rounds: Vec::new(),
                        stats: uc.stats(),
                    },
                    Backend::Multi(uc) => {
                        let tails = uc.completed_vector();
                        let wms: Vec<u64> =
                            (0..uc.lanes()).map(|l| uc.durable_watermark(l)).collect();
                        ShardMetrics {
                            shard: i,
                            completed_tail: tails.iter().sum(),
                            durable_watermark: wms.iter().sum(),
                            read_slow_paths: 0,
                            read_fast_optimistic: 0,
                            read_validation_failures: 0,
                            lane_combine_rounds: (0..uc.lanes())
                                .map(|l| uc.combine_rounds(l))
                                .collect(),
                            lane_completed_tails: tails,
                            lane_durable_watermarks: wms,
                            stats: uc.stats(),
                        }
                    }
                })
                .collect(),
        }
    }

    /// Simulates a full-system power failure: one consistent cut frozen
    /// across the metadata directory and **all** shards' NVM images
    /// simultaneously — for multi-log shards, all logs' images inside the
    /// same cut vector. No shard-by-shard (or log-by-log) skew is possible
    /// — this is the orchestrator's reason to exist.
    ///
    /// # Panics
    /// Panics in per-shard-runtime mode, or if the shared runtime was not
    /// created with crash simulation enabled.
    pub fn simulate_crash(&self) -> (CrashToken, ShardedCrashImage<T>) {
        let runtime = self
            .shared_runtime
            .as_ref()
            .expect("simulate_crash requires a shared runtime (ShardedStore::new)");
        runtime.capture_cut(|| ShardedCrashImage {
            directory: self.directory.snapshot_for_recovery(runtime),
            shards: self
                .shards
                .iter()
                .map(|s| match s {
                    Backend::Single(uc) => ShardImage::Single(uc.crash_image_in_cut()),
                    Backend::Multi(uc) => ShardImage::Multi(uc.crash_image_in_cut()),
                })
                .collect(),
        })
    }

    /// Validates a crash image's persisted layout against its captured
    /// shard images, returning (shards, lanes, next epoch).
    fn validate_layout(image: &ShardedCrashImage<T>) -> (usize, usize, u64) {
        let persisted = image
            .persisted_shards()
            .expect("crash image has no persisted shard count: not a prep-shard pool");
        assert_eq!(
            persisted as usize,
            image.shards.len(),
            "persisted shard count {} disagrees with {} captured shard images: \
             refusing to recover an inconsistent layout",
            persisted,
            image.shards.len()
        );
        (
            persisted as usize,
            image.persisted_lanes() as usize,
            image.epoch() + 1,
        )
    }

    /// The cross-shard recovery procedure for single-log stores: rebuilds
    /// every shard from one [`ShardedCrashImage`].
    ///
    /// 1. Validate the persisted layout: the directory's shard count must
    ///    exist and match the number of captured shard images (a mismatch
    ///    means the image is not a cut of one store — refusing is the
    ///    recovery-safety property).
    /// 2. Recover each shard independently via [`PrepUc::recover`] (§5.1 /
    ///    §5.2 per shard), all sharing `config.runtime` again.
    /// 3. Re-persist the metadata roots with the recovery epoch advanced.
    ///
    /// The recovered store routes with `key_fn` over the **persisted**
    /// shard count, so keys keep mapping to the shards that own their
    /// history.
    ///
    /// # Panics
    /// Panics if the image's persisted layout is missing or inconsistent,
    /// or the image came from a multi-log store (use
    /// [`ShardedStore::recover_multilog`]).
    pub fn recover(
        token: CrashToken,
        image: ShardedCrashImage<T>,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
    ) -> Self {
        let (persisted, lanes, epoch) = Self::validate_layout(&image);
        assert_eq!(
            lanes, 1,
            "crash image is from a {lanes}-log store: use recover_multilog"
        );
        let router = ShardRouter::new(persisted, key_fn);

        // Recover each shard's object state (stable replica + durable log
        // replay) without spawning instances yet, then build them all
        // against the shared runtime.
        let recovered: Vec<Backend<T>> = image
            .shards
            .into_iter()
            .map(|img| match img {
                ShardImage::Single(img) => Backend::Single(PrepUc::recover(
                    token,
                    img,
                    assignment.clone(),
                    config.clone(),
                )),
                ShardImage::Multi(_) => {
                    unreachable!("lanes root said 1 but a shard image is multi-log")
                }
            })
            .collect();
        let runtime = Arc::clone(&config.runtime);
        Self::assemble(recovered, router, assignment, runtime, epoch)
    }

    /// The cross-shard recovery procedure for multi-log stores: like
    /// [`ShardedStore::recover`], but each shard recovers through
    /// [`MultiLogUc::recover`] (per-log replay at the cut vector, plus the
    /// cross-log completion pass), and the recovered router re-derives
    /// both coordinates from the persisted `shards × lanes` geometry.
    ///
    /// # Panics
    /// Panics if the image's persisted layout is missing or inconsistent,
    /// or the image came from a single-log store (use
    /// [`ShardedStore::recover`]).
    #[allow(clippy::too_many_arguments)] // the three closures are the API
    pub fn recover_multilog(
        token: CrashToken,
        image: ShardedCrashImage<T>,
        assignment: ThreadAssignment,
        config: PrepConfig,
        key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
        cross: impl Fn(&T::Op) -> bool + Send + Sync + 'static,
        fold: impl Fn(&T::Op, Vec<T::Resp>) -> T::Resp + Send + Sync + 'static,
    ) -> Self {
        let (persisted, lanes, epoch) = Self::validate_layout(&image);
        assert!(
            lanes > 1,
            "crash image is from a single-log store: use recover"
        );
        let router = ShardRouter::new(persisted, key_fn).with_lanes(lanes);
        let cross: CrossFn<T> = Arc::new(cross);
        let fold: FoldFn<T> = Arc::new(fold);
        let max_workers = assignment.workers();
        let recovered: Vec<Backend<T>> = image
            .shards
            .into_iter()
            .map(|img| match img {
                ShardImage::Multi(img) => Backend::Multi(MultiLogUc::recover(
                    token,
                    img,
                    Self::lane_router(&router, &cross, &fold, persisted),
                    max_workers,
                    config.clone(),
                )),
                ShardImage::Single(_) => {
                    unreachable!("lanes root said {lanes} but a shard image is single-log")
                }
            })
            .collect();
        let runtime = Arc::clone(&config.runtime);
        Self::assemble(recovered, router, assignment, runtime, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
    use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
    use prep_topology::Topology;
    use prep_uc::DurabilityLevel;

    fn cfg(level: DurabilityLevel) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(32)
            .with_runtime(PmemRuntime::for_crash_tests())
    }

    fn map_key(op: &MapOp) -> u64 {
        op.key().unwrap_or(0)
    }

    fn map_cross(op: &MapOp) -> bool {
        op.key().is_none()
    }

    fn map_fold(_op: &MapOp, resps: Vec<MapResp>) -> MapResp {
        MapResp::Len(
            resps
                .into_iter()
                .map(|r| match r {
                    MapResp::Len(n) => n,
                    other => panic!("cross-log fold over non-Len {other:?}"),
                })
                .sum(),
        )
    }

    fn record_key(op: &RecorderOp) -> u64 {
        match *op {
            RecorderOp::Record(id) => id,
            RecorderOp::Count | RecorderOp::Last => 0,
        }
    }

    fn mk_multilog(
        shards: usize,
        lanes: usize,
        workers: usize,
        config: PrepConfig,
    ) -> ShardedStore<HashMap> {
        ShardedStore::new_multilog(
            HashMap::new(),
            shards,
            lanes,
            Topology::small().assign_workers(workers),
            config,
            map_key,
            map_cross,
            map_fold,
        )
    }

    #[test]
    fn roundtrip_across_shards_and_aggregate_len() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            HashMap::new(),
            4,
            asg,
            cfg(DurabilityLevel::Buffered),
            map_key,
        );
        let t = store.register(0);
        for k in 0..100u64 {
            store.execute(
                &t,
                MapOp::Insert {
                    key: k,
                    value: k * 3,
                },
            );
        }
        for k in 0..100u64 {
            assert_eq!(
                store.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k * 3))
            );
        }
        // Keys actually spread across all four logs. Gets are read-only
        // and bypass the log, so only the 100 inserts appear in the tails.
        let tails = store.completed_tails();
        assert_eq!(tails.iter().sum::<u64>(), 100);
        // The broadcast aggregate sums per-shard lengths.
        let total: usize = store
            .execute_all(&t, MapOp::Len)
            .into_iter()
            .map(|r| match r {
                MapResp::Len(n) => n,
                other => panic!("unexpected {other:?}"),
            })
            .sum();
        assert_eq!(total, 100);
        assert!(
            tails.iter().all(|&t| t > 0),
            "a shard got no traffic: {tails:?}"
        );
    }

    #[test]
    fn multilog_roundtrip_spreads_over_shards_and_lanes() {
        let store = mk_multilog(2, 3, 1, cfg(DurabilityLevel::Buffered));
        assert_eq!(store.lanes(), 3);
        let t = store.register(0);
        for k in 0..300u64 {
            store.execute(&t, MapOp::Insert { key: k, value: !k });
        }
        for k in 0..300u64 {
            assert_eq!(
                store.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(!k))
            );
        }
        // Every log of every shard saw traffic (6 partitions, 300 keys).
        let m = store.metrics();
        for s in &m.shards {
            assert_eq!(s.lane_completed_tails.len(), 3);
            for (l, &ct) in s.lane_completed_tails.iter().enumerate() {
                assert!(ct > 0, "shard {} log {l} got no traffic", s.shard);
            }
            assert_eq!(s.completed_tail, s.lane_completed_tails.iter().sum::<u64>());
        }
        // Cross-log aggregate per shard, broadcast over shards: one Len
        // entry lands in every log of every shard, and the folds sum to
        // the full count.
        let total: usize = store
            .execute_all(&t, MapOp::Len)
            .into_iter()
            .map(|r| match r {
                MapResp::Len(n) => n,
                other => panic!("unexpected {other:?}"),
            })
            .sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn multilog_store_crash_recovers_at_the_cut_vector() {
        for level in [DurabilityLevel::Buffered, DurabilityLevel::Durable] {
            let config = cfg(level).with_epsilon(8);
            let store = mk_multilog(2, 2, 1, config.clone());
            let t = store.register(0);
            for k in 0..150u64 {
                store.execute(
                    &t,
                    MapOp::Insert {
                        key: k,
                        value: k + 1,
                    },
                );
            }
            let bound = store.loss_bound();
            let (token, image) = store.simulate_crash();
            assert_eq!(image.persisted_lanes(), 2);
            drop(store);
            let rec = ShardedStore::recover_multilog(
                token,
                image,
                Topology::small().assign_workers(1),
                config,
                map_key,
                map_cross,
                map_fold,
            );
            assert_eq!(rec.epoch(), 1);
            let t = rec.register(0);
            let mut lost = 0u64;
            for k in 0..150u64 {
                match rec.execute(&t, MapOp::Get { key: k }) {
                    MapResp::Value(Some(v)) => assert_eq!(v, k + 1),
                    MapResp::Value(None) => lost += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
            match level {
                DurabilityLevel::Durable => assert_eq!(lost, 0, "durable multilog lost ops"),
                DurabilityLevel::Buffered => assert!(
                    lost <= bound,
                    "buffered multilog lost {lost} > N·L·(ε+β−1) = {bound}"
                ),
            }
        }
    }

    #[test]
    fn multilog_loss_bound_composes_over_shards_and_lanes() {
        let store = mk_multilog(2, 4, 3, cfg(DurabilityLevel::Buffered).with_epsilon(10));
        // N=2 shards × L=4 logs × (ε + β − 1) with β = 3 workers.
        assert_eq!(store.loss_bound(), 2 * 4 * 12);
    }

    #[test]
    #[should_panic(expected = "use recover_multilog")]
    fn single_log_recovery_rejects_multilog_images() {
        let config = cfg(DurabilityLevel::Buffered);
        let store = mk_multilog(2, 2, 1, config.clone());
        let (token, image) = store.simulate_crash();
        drop(store);
        let _ = ShardedStore::recover(
            token,
            image,
            Topology::small().assign_workers(1),
            config,
            map_key,
        );
    }

    #[test]
    fn concurrent_workers_complete_everything() {
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 200;
        let asg = Topology::small().assign_workers(THREADS);
        let store = Arc::new(ShardedStore::new(
            Recorder::new(),
            2,
            asg,
            cfg(DurabilityLevel::Durable),
            record_key,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let t = store.register(w);
                    for i in 0..PER_THREAD {
                        store.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            store.completed_tails().iter().sum::<u64>(),
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn combined_loss_bound_is_n_times_per_shard() {
        let asg = Topology::small().assign_workers(3); // β = 2
        let store = ShardedStore::new(
            Recorder::new(),
            4,
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(10),
            record_key,
        );
        assert_eq!(store.loss_bound(), 4 * 11); // N·(ε + β − 1)
        let durable = ShardedStore::new(
            Recorder::new(),
            4,
            Topology::small().assign_workers(3),
            cfg(DurabilityLevel::Durable),
            record_key,
        );
        assert_eq!(durable.loss_bound(), 0);
    }

    #[test]
    fn sharded_crash_recovers_per_shard_prefixes_durable_exact() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            Recorder::new(),
            3,
            asg.clone(),
            cfg(DurabilityLevel::Durable),
            record_key,
        );
        let t = store.register(0);
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for i in 0..200u64 {
            let s = store.shard_of(&RecorderOp::Record(i));
            store.execute(&t, RecorderOp::Record(i));
            per_shard[s].push(i);
        }
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec =
            ShardedStore::recover(token, image, asg, cfg(DurabilityLevel::Durable), record_key);
        assert_eq!(rec.epoch(), 1);
        assert_eq!(rec.shards(), 3);
        for (s, issued) in per_shard.iter().enumerate() {
            let hist = rec.shard(s).with_replica(0, |r| r.history().to_vec());
            assert_eq!(&hist, issued, "durable shard {s} must lose nothing");
        }
    }

    #[test]
    fn sharded_crash_buffered_loses_within_combined_bound() {
        let eps = 8u64;
        let asg = Topology::small().assign_workers(1);
        let config = cfg(DurabilityLevel::Buffered).with_epsilon(eps);
        let store = ShardedStore::new(Recorder::new(), 4, asg.clone(), config.clone(), record_key);
        let t = store.register(0);
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for i in 0..300u64 {
            let s = store.shard_of(&RecorderOp::Record(i));
            store.execute(&t, RecorderOp::Record(i));
            per_shard[s].push(i);
        }
        let bound = store.loss_bound();
        assert_eq!(bound, 4 * eps); // β = 1 ⇒ per-shard ε + β − 1 = ε
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec = ShardedStore::recover(token, image, asg, config, record_key);
        let mut total_lost = 0u64;
        for (s, issued) in per_shard.iter().enumerate() {
            let hist = rec.shard(s).with_replica(0, |r| r.history().to_vec());
            let kept = assert_prefix(&hist, issued);
            total_lost += (issued.len() - kept) as u64;
        }
        assert!(
            total_lost <= bound,
            "lost {total_lost} > combined bound {bound}"
        );
    }

    #[test]
    fn recovered_store_keeps_serving_with_same_routing() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            HashMap::new(),
            2,
            asg.clone(),
            cfg(DurabilityLevel::Durable),
            map_key,
        );
        let t = store.register(0);
        for k in 0..50u64 {
            store.execute(
                &t,
                MapOp::Insert {
                    key: k,
                    value: k + 1,
                },
            );
        }
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec = ShardedStore::recover(token, image, asg, cfg(DurabilityLevel::Durable), map_key);
        let t = rec.register(0);
        for k in 0..50u64 {
            assert_eq!(
                rec.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k + 1)),
                "key {k} must be found on its original shard after recovery"
            );
        }
        // And the store accepts new writes post-recovery.
        rec.execute(&t, MapOp::Insert { key: 999, value: 1 });
        assert_eq!(
            rec.execute(&t, MapOp::Get { key: 999 }),
            MapResp::Value(Some(1))
        );
    }

    #[test]
    fn directory_roots_are_persisted_and_epoch_advances() {
        let asg = Topology::small().assign_workers(1);
        let config = cfg(DurabilityLevel::Buffered);
        let store = ShardedStore::new(Recorder::new(), 2, asg.clone(), config.clone(), record_key);
        assert_eq!(store.directory().read(ROOT_SHARDS), Some(2));
        assert_eq!(store.directory().read(ROOT_LANES), Some(1));
        assert_eq!(store.directory().read(ROOT_EPOCH), Some(0));
        assert_eq!(store.directory().read("prep-shard/shard/1/root"), Some(1));
        let (token, image) = store.simulate_crash();
        assert_eq!(image.persisted_shards(), Some(2));
        assert_eq!(image.persisted_lanes(), 1);
        assert_eq!(image.epoch(), 0);
        drop(store);
        let rec = ShardedStore::recover(token, image, asg.clone(), config.clone(), record_key);
        assert_eq!(rec.epoch(), 1);
        assert_eq!(rec.directory().read(ROOT_EPOCH), Some(1));
        // A second crash epoch keeps counting.
        let (token, image) = rec.simulate_crash();
        drop(rec);
        let rec2 = ShardedStore::recover(token, image, asg, config, record_key);
        assert_eq!(rec2.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "refusing to recover")]
    fn recovery_rejects_inconsistent_shard_layout() {
        let asg = Topology::small().assign_workers(1);
        let config = cfg(DurabilityLevel::Buffered);
        let store = ShardedStore::new(Recorder::new(), 2, asg.clone(), config.clone(), record_key);
        let (token, mut image) = store.simulate_crash();
        drop(store);
        image.shards.pop(); // lose a shard's image
        let _ = ShardedStore::recover(token, image, asg, config, record_key);
    }

    #[test]
    #[should_panic(expected = "requires a shared runtime")]
    fn per_shard_runtime_mode_cannot_capture_crashes() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::with_per_shard_runtimes(
            Recorder::new(),
            2,
            asg,
            cfg(DurabilityLevel::Buffered),
            record_key,
        );
        let _ = store.simulate_crash();
    }

    #[test]
    fn metrics_snapshot_and_quiesce_cover_all_shards() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            HashMap::new(),
            3,
            asg.clone(),
            cfg(DurabilityLevel::Buffered).with_epsilon(64),
            map_key,
        );
        let before = store.metrics();
        assert_eq!(before.shards.len(), 3);
        assert!(before.shared_counters);
        assert_eq!(before.total_completed(), 0);
        let t = store.register(0);
        for k in 0..60u64 {
            store.execute(&t, MapOp::Insert { key: k, value: k });
        }
        // ε = 64 > per-shard op counts: only a quiesce forces the
        // checkpoints that raise the watermarks to the tails.
        store.quiesce_persistence();
        let m = store.metrics().delta(&before);
        assert_eq!(m.total_completed(), 60);
        for s in &m.shards {
            assert!(s.completed_tail > 0, "shard {} got no traffic", s.shard);
        }
        let now = store.metrics();
        for s in &now.shards {
            assert_eq!(
                s.durable_watermark, s.completed_tail,
                "quiesce left shard {} short",
                s.shard
            );
        }
        // Zero buffered loss after quiesce: the recovered store holds every
        // completed op even though the store ran in buffered mode.
        let (token, image) = store.simulate_crash();
        drop(store);
        let rec = ShardedStore::recover(
            token,
            image,
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(64),
            map_key,
        );
        let t = rec.register(0);
        for k in 0..60u64 {
            assert_eq!(
                rec.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k)),
                "key {k} lost despite a quiesced (clean) shutdown"
            );
        }
    }

    #[test]
    fn multilog_quiesce_covers_every_lane_and_metrics_show_combiners() {
        let store = mk_multilog(2, 2, 1, cfg(DurabilityLevel::Buffered).with_epsilon(64));
        let t = store.register(0);
        for k in 0..80u64 {
            store.execute(&t, MapOp::Insert { key: k, value: k });
        }
        store.quiesce_persistence();
        let m = store.metrics();
        for s in &m.shards {
            assert_eq!(s.lane_durable_watermarks, s.lane_completed_tails);
            assert!(
                s.lane_combine_rounds.iter().all(|&c| c > 0),
                "shard {}: a lane's combiner never ran: {:?}",
                s.shard,
                s.lane_combine_rounds
            );
        }
    }

    #[test]
    fn per_shard_runtimes_attribute_stats_to_the_loaded_shard() {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::with_per_shard_runtimes(
            Recorder::new(),
            2,
            asg,
            cfg(DurabilityLevel::Durable),
            record_key,
        );
        let t = store.register(0);
        // Drive updates onto exactly one shard via execute_on.
        for i in 0..100u64 {
            store.execute_on(1, &t, RecorderOp::Record(i));
        }
        prep_sync::spin_until(|| store.shard(1).completed_tail() >= 100);
        let stats = store.stats_per_shard();
        assert!(
            stats[1].total_flushes() > 0,
            "loaded shard must show flush traffic: {stats:?}"
        );
        assert!(
            stats[1].total_flushes() > stats[0].total_flushes(),
            "idle shard 0 must not absorb shard 1's counters: {stats:?}"
        );
    }
}
