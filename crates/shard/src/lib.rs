//! # prep-shard: a sharded persistent store over PREP-UC
//!
//! One PREP-UC instance serializes every update through a single shared
//! log and a single persistence thread. That is the right construction for
//! one object, but it caps system throughput at one log's combining rate —
//! and many applications (key-value stores above all) are *already
//! partitionable*. Node-replication systems scale past one log by running
//! several of them over disjoint partitions (NrOS's CNR); buffered-durable
//! system layers (Montage) show that a persistent *store* abstraction is
//! what turns a persistent-object primitive into something applications
//! use directly. `prep-shard` combines both ideas on top of this
//! workspace's PREP-UC:
//!
//! * [`ShardedStore`] runs **N independent `PrepUc<T>` instances** — each
//!   with its own operation log, replica set, flush boundary, and
//!   persistence thread — so update throughput scales with the number of
//!   logs instead of being capped by one;
//! * [`ShardedStore::new_multilog`] goes one level further: each shard is
//!   a [`prep_uc::MultiLogUc`] with **L logs** (persistent CNR), so the
//!   store runs `N × L` combiners. Commuting (single-key) ops flow through
//!   their key's log concurrently; multi-key/scan ops take the ordered
//!   cross-log path inside their shard;
//! * a **key → (shard, log) router** ([`router`]) dispatches every
//!   operation by a caller-supplied key function — one hash, two
//!   mixed-radix digits, so the log partitioning *subsumes* the shard
//!   routing instead of correlating with it — and [`ShardToken`] carries
//!   one registered NR thread token *per shard* so any worker can hit any
//!   shard without re-registration;
//! * a **cross-shard recovery orchestrator**: all shards (and a
//!   [`prep_pmem::PersistentDirectory`] of namespaced metadata roots)
//!   share one [`prep_pmem::PmemRuntime`], so
//!   [`ShardedStore::simulate_crash`] freezes a **single consistent cut**
//!   across every shard's NVM images at once, and
//!   [`ShardedStore::recover`] rebuilds all N shards from that one cut —
//!   validating the persisted shard layout and bumping a persisted
//!   recovery epoch.
//!
//! ## Correctness condition
//!
//! Each shard independently guarantees PREP-UC's durability condition, and
//! the cut is taken across all shards at one instant, so after a crash:
//!
//! * every shard recovers a **prefix of its own linearization order** —
//!   for a multi-log shard, a prefix of *each log's* order at one cut
//!   vector, with cross-log ops atomic across the cut;
//! * total completed-operation loss is at most **N·(ε + β − 1)** in
//!   buffered mode — **N·L·(ε + β − 1)** with L logs per shard
//!   ([`ShardedStore::loss_bound`]) — and **0** in durable mode.
//!
//! There is no cross-shard ordering guarantee beyond the cut itself —
//! exactly the per-partition contract CNR gives for partitioned structures
//! (operations spanning two shards would need a cross-log commit protocol,
//! which partitionable workloads by definition do not).
//!
//! ## Quick start
//!
//! ```
//! use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
//! use prep_shard::ShardedStore;
//! use prep_topology::Topology;
//! use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig};
//!
//! let asg = Topology::small().assign_workers(2);
//! let cfg = PrepConfig::new(DurabilityLevel::Durable)
//!     .with_log_size(256)
//!     .with_epsilon(32)
//!     .with_runtime(PmemRuntime::for_crash_tests());
//! // 4 shards, routed by the map key; Len has no key so it broadcasts.
//! let store = ShardedStore::new(HashMap::new(), 4, asg, cfg, |op: &MapOp| match *op {
//!     MapOp::Insert { key, .. }
//!     | MapOp::Remove { key }
//!     | MapOp::Get { key }
//!     | MapOp::Contains { key } => key,
//!     MapOp::Len => 0,
//! });
//! let t = store.register(0);
//! store.execute(&t, MapOp::Insert { key: 7, value: 70 });
//! assert_eq!(store.execute(&t, MapOp::Get { key: 7 }), MapResp::Value(Some(70)));
//! // Aggregate over every shard:
//! let total: usize = store
//!     .execute_all(&t, MapOp::Len)
//!     .into_iter()
//!     .map(|r| match r { MapResp::Len(n) => n, _ => unreachable!() })
//!     .sum();
//! assert_eq!(total, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
pub mod router;
mod store;

pub use metrics::{ShardMetrics, StoreMetrics};
pub use router::{lane_index, mix64, shard_index, Route, ShardRouter};
pub use store::{ShardImage, ShardToken, ShardedCrashImage, ShardedStore};
