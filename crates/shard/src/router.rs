//! The key → shard router.
//!
//! Routing must be (a) deterministic — the same operation must reach the
//! same shard before and after a crash, or recovery would splice histories
//! from different logs — and (b) well-mixed, so adjacent keys (the common
//! pattern in ingest workloads) spread across shards instead of hammering
//! one log. The router therefore applies a finalizing mix (splitmix64's
//! output stage) before reducing modulo the shard count.

use std::sync::Arc;

/// Finalizing 64-bit mix (splitmix64's output permutation): bijective, so
/// it loses no key information, and avalanching, so consecutive keys land
/// on unrelated shards.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard a key belongs to, out of `shards`.
///
/// # Panics
/// Panics if `shards` is zero.
#[inline]
pub fn shard_index(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard_index with zero shards");
    (mix64(key) % shards as u64) as usize
}

/// A reusable router: a key-extraction function plus a shard count.
///
/// The key function is the *only* application-specific part of sharding:
/// it names the partition an operation touches (a map op's key, a queue
/// id, a tenant id). Operations that touch no single partition (aggregates
/// like `Len`) are the caller's to broadcast via
/// [`crate::ShardedStore::execute_all`].
pub struct ShardRouter<O> {
    key_fn: Arc<dyn Fn(&O) -> u64 + Send + Sync>,
    shards: usize,
}

impl<O> Clone for ShardRouter<O> {
    fn clone(&self) -> Self {
        ShardRouter {
            key_fn: Arc::clone(&self.key_fn),
            shards: self.shards,
        }
    }
}

impl<O> std::fmt::Debug for ShardRouter<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards)
            .finish()
    }
}

impl<O> ShardRouter<O> {
    /// Builds a router over `shards` partitions.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, key_fn: impl Fn(&O) -> u64 + Send + Sync + 'static) -> Self {
        assert!(shards > 0, "a sharded store needs at least one shard");
        ShardRouter {
            key_fn: Arc::new(key_fn),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing key of `op`.
    pub fn key_of(&self, op: &O) -> u64 {
        (self.key_fn)(op)
    }

    /// The shard `op` routes to.
    pub fn shard_of(&self, op: &O) -> usize {
        shard_index(self.key_of(op), self.shards)
    }

    /// A router with the same key function over a different shard count
    /// (used by recovery when re-instantiating from a persisted layout).
    pub(crate) fn with_shards(&self, shards: usize) -> Self {
        assert!(shards > 0, "a sharded store needs at least one shard");
        ShardRouter {
            key_fn: Arc::clone(&self.key_fn),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r: ShardRouter<u64> = ShardRouter::new(4, |&k| k);
        for k in 0..1_000u64 {
            let s = r.shard_of(&k);
            assert!(s < 4);
            assert_eq!(s, r.shard_of(&k), "same key, same shard");
            assert_eq!(s, shard_index(k, 4));
        }
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        // Ingest workloads use dense keys; the mix must spread them. With
        // 4 shards and 4096 consecutive keys, every shard should get
        // within 25% of its fair share.
        let r: ShardRouter<u64> = ShardRouter::new(4, |&k| k);
        let mut counts = [0usize; 4];
        for k in 0..4096u64 {
            counts[r.shard_of(&k)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (768..=1280).contains(&c),
                "shard {s} got {c} of 4096 keys (want ~1024)"
            );
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r: ShardRouter<u64> = ShardRouter::new(1, |&k| k);
        for k in [0u64, 1, u64::MAX] {
            assert_eq!(r.shard_of(&k), 0);
        }
    }

    #[test]
    fn mix64_is_bijective_on_a_sample() {
        use std::collections::HashSet;
        let outputs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outputs.len(), 10_000, "mix64 collided on distinct inputs");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::<u64>::new(0, |&k| k);
    }
}
