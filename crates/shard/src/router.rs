//! The key → (shard, log) router.
//!
//! Routing must be (a) deterministic — the same operation must reach the
//! same shard *and the same log within it* before and after a crash, or
//! recovery would splice histories from different logs — and (b)
//! well-mixed, so adjacent keys (the common pattern in ingest workloads)
//! spread across shards instead of hammering one log.
//!
//! With multi-log shards there are **two** partitioning coordinates, and
//! they must not correlate: if `shard = h(k) % S` and `lane = h(k) % L`
//! came from the same residue, every key in shard `s` would pile into a
//! correlated subset of lanes (catastrophically so when `S = L`). The
//! router therefore derives both coordinates from **one** hash by
//! mixed-radix decomposition — `shard = h % S`, `lane = (h / S) % L` — so
//! the log partitioning *subsumes* the shard routing: one mix, two
//! independent digit positions. [`ShardRouter::route_of`] is the one place
//! this decomposition lives.

use std::sync::Arc;

pub use prep_uc::mix64;

/// The shard a key belongs to, out of `shards`.
///
/// # Panics
/// Panics if `shards` is zero.
#[inline]
pub fn shard_index(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard_index with zero shards");
    (mix64(key) % shards as u64) as usize
}

/// The log (lane) a key belongs to *within its shard*: the next
/// mixed-radix digit of the same hash (`(h / shards) % lanes`), so it is
/// independent of — and never computed beside — the shard coordinate.
///
/// # Panics
/// Panics if `shards` or `lanes` is zero.
#[inline]
pub fn lane_index(key: u64, shards: usize, lanes: usize) -> usize {
    assert!(shards > 0, "lane_index with zero shards");
    assert!(lanes > 0, "lane_index with zero lanes");
    ((mix64(key) / shards as u64) % lanes as u64) as usize
}

/// Both routing coordinates of one operation, from one hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// The shard (outer partition) the key belongs to.
    pub shard: usize,
    /// The log within the shard (inner partition). Always 0 for
    /// single-log shards.
    pub lane: usize,
}

/// A reusable router: a key-extraction function plus the partition
/// geometry (`shards` outer × `lanes` inner).
///
/// The key function is the *only* application-specific part of sharding:
/// it names the partition an operation touches (a map op's key, a queue
/// id, a tenant id). Operations that touch no single partition (aggregates
/// like `Len`, scans) are the caller's to broadcast via
/// [`crate::ShardedStore::execute_all`] — and, inside a multi-log shard,
/// the store's cross-log classifier routes them through the ordered
/// cross-log path.
pub struct ShardRouter<O> {
    key_fn: Arc<dyn Fn(&O) -> u64 + Send + Sync>,
    shards: usize,
    lanes: usize,
}

impl<O> Clone for ShardRouter<O> {
    fn clone(&self) -> Self {
        ShardRouter {
            key_fn: Arc::clone(&self.key_fn),
            shards: self.shards,
            lanes: self.lanes,
        }
    }
}

impl<O> std::fmt::Debug for ShardRouter<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards)
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl<O> ShardRouter<O> {
    /// Builds a router over `shards` single-log partitions.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, key_fn: impl Fn(&O) -> u64 + Send + Sync + 'static) -> Self {
        assert!(shards > 0, "a sharded store needs at least one shard");
        ShardRouter {
            key_fn: Arc::new(key_fn),
            shards,
            lanes: 1,
        }
    }

    /// The same router with `lanes` logs per shard (the multi-log
    /// geometry).
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "a shard needs at least one log");
        self.lanes = lanes;
        self
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of logs per shard.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The routing key of `op`.
    pub fn key_of(&self, op: &O) -> u64 {
        (self.key_fn)(op)
    }

    /// The shard `op` routes to.
    pub fn shard_of(&self, op: &O) -> usize {
        shard_index(self.key_of(op), self.shards)
    }

    /// Both coordinates of `op`, decomposed from one hash (module docs).
    pub fn route_of(&self, op: &O) -> Route {
        let key = self.key_of(op);
        Route {
            shard: shard_index(key, self.shards),
            lane: lane_index(key, self.shards, self.lanes),
        }
    }

    /// The key-extraction function, shareable with per-shard lane routers
    /// (the multi-log store hands it to each shard's `LaneRouter` so the
    /// inner routing provably uses the same key and hash).
    pub(crate) fn key_fn(&self) -> Arc<dyn Fn(&O) -> u64 + Send + Sync> {
        Arc::clone(&self.key_fn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r: ShardRouter<u64> = ShardRouter::new(4, |&k| k).with_lanes(3);
        for k in 0..1_000u64 {
            let route = r.route_of(&k);
            assert!(route.shard < 4);
            assert!(route.lane < 3);
            assert_eq!(route, r.route_of(&k), "same key, same route");
            assert_eq!(route.shard, shard_index(k, 4));
            assert_eq!(route.lane, lane_index(k, 4, 3));
        }
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        // Ingest workloads use dense keys; the mix must spread them. With
        // 4 shards and 4096 consecutive keys, every shard should get
        // within 25% of its fair share.
        let r: ShardRouter<u64> = ShardRouter::new(4, |&k| k);
        let mut counts = [0usize; 4];
        for k in 0..4096u64 {
            counts[r.shard_of(&k)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (768..=1280).contains(&c),
                "shard {s} got {c} of 4096 keys (want ~1024)"
            );
        }
    }

    #[test]
    fn lane_coordinate_is_independent_of_shard_coordinate() {
        // The degenerate case subsumption exists to fix: S = L. With two
        // independent residues of the same hash, shard s would see only a
        // correlated lane subset; with mixed-radix decomposition each
        // shard's keys spread over all lanes within ~25% of fair share.
        const S: usize = 4;
        const L: usize = 4;
        let mut counts = [[0usize; L]; S];
        for k in 0..16_384u64 {
            counts[shard_index(k, S)][lane_index(k, S, L)] += 1;
        }
        for (s, lanes) in counts.iter().enumerate() {
            let total: usize = lanes.iter().sum();
            for (l, &c) in lanes.iter().enumerate() {
                let fair = total / L;
                assert!(
                    c >= fair * 3 / 4 && c <= fair * 5 / 4,
                    "shard {s} lane {l}: {c} of {total} (want ~{fair}) — \
                     coordinates correlated"
                );
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r: ShardRouter<u64> = ShardRouter::new(1, |&k| k);
        for k in [0u64, 1, u64::MAX] {
            assert_eq!(r.shard_of(&k), 0);
            // With one shard the lane digit is the whole hash modulo L.
            assert!(r.route_of(&k).lane == 0);
        }
    }

    #[test]
    fn mix64_is_bijective_on_a_sample() {
        use std::collections::HashSet;
        let outputs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outputs.len(), 10_000, "mix64 collided on distinct inputs");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::<u64>::new(0, |&k| k);
    }

    #[test]
    #[should_panic(expected = "at least one log")]
    fn zero_lanes_rejected() {
        let _ = ShardRouter::<u64>::new(1, |&k| k).with_lanes(0);
    }
}
