//! One snapshot type for everything a sharded store can report.
//!
//! Before this module existed, every consumer of per-shard observability —
//! the benchmark harness's per-shard lanes, diagnostics in tests — hand-rolled
//! the same plumbing: call [`crate::ShardedStore::completed_tails`], zip it
//! with [`crate::ShardedStore::stats_per_shard`], subtract baselines field by
//! field. [`StoreMetrics`] is that plumbing done once: a point-in-time
//! snapshot of every shard's progress counters plus the store-level
//! constants, with [`StoreMetrics::delta`] for interval accounting. The
//! serve layer's ADMIN verb serializes exactly this struct onto the wire,
//! and `prep-bench` builds its per-shard report lanes from it.

use prep_pmem::PmemStatsSnapshot;

/// A point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// The shard's `completedTail`: total completed updates.
    pub completed_tail: u64,
    /// Crash-survivability watermark: completed updates at index below this
    /// survive a crash taken at snapshot time (see
    /// [`prep_uc::PrepUc::durable_watermark`]).
    pub durable_watermark: u64,
    /// Read-only ops that missed the zero-contention read fast path.
    pub read_slow_paths: u64,
    /// Validated optimistic (lock-free) fast-path reads: zero atomic RMWs,
    /// zero shared-cacheline stores each.
    pub read_fast_optimistic: u64,
    /// Optimistic reads that failed seqlock validation (a combiner
    /// overlapped) and fell back to the locked path.
    pub read_validation_failures: u64,
    /// Per-log `completedTail`s for a multi-log shard (one entry per log,
    /// summing to `completed_tail`). Empty for single-log shards.
    pub lane_completed_tails: Vec<u64>,
    /// Per-log crash-survivability watermarks for a multi-log shard.
    /// Empty for single-log shards.
    pub lane_durable_watermarks: Vec<u64>,
    /// Per-log combine rounds for a multi-log shard: how many batches each
    /// log's combiner flushed. All entries non-zero ⇔ every log's combiner
    /// actually ran. Empty for single-log shards.
    pub lane_combine_rounds: Vec<u64>,
    /// Persistence-operation counters. Per-shard attribution is only
    /// meaningful in per-shard-runtime mode; with a shared runtime every
    /// shard reads the same global counters (see
    /// [`StoreMetrics::shared_counters`]).
    pub stats: PmemStatsSnapshot,
}

impl ShardMetrics {
    /// Counter-wise difference `self − earlier` (tails and watermarks are
    /// monotone, so the difference is the interval's progress).
    pub fn delta(&self, earlier: &ShardMetrics) -> ShardMetrics {
        ShardMetrics {
            shard: self.shard,
            completed_tail: self.completed_tail.saturating_sub(earlier.completed_tail),
            durable_watermark: self
                .durable_watermark
                .saturating_sub(earlier.durable_watermark),
            read_slow_paths: self.read_slow_paths.saturating_sub(earlier.read_slow_paths),
            read_fast_optimistic: self
                .read_fast_optimistic
                .saturating_sub(earlier.read_fast_optimistic),
            read_validation_failures: self
                .read_validation_failures
                .saturating_sub(earlier.read_validation_failures),
            lane_completed_tails: Self::delta_lanes(
                &self.lane_completed_tails,
                &earlier.lane_completed_tails,
            ),
            lane_durable_watermarks: Self::delta_lanes(
                &self.lane_durable_watermarks,
                &earlier.lane_durable_watermarks,
            ),
            lane_combine_rounds: Self::delta_lanes(
                &self.lane_combine_rounds,
                &earlier.lane_combine_rounds,
            ),
            stats: self.stats.delta(&earlier.stats),
        }
    }

    /// Element-wise monotone difference of per-log counters. An empty
    /// `earlier` (snapshot predating the lanes, or a zero baseline) is
    /// treated as all-zero.
    fn delta_lanes(now: &[u64], earlier: &[u64]) -> Vec<u64> {
        now.iter()
            .enumerate()
            .map(|(l, &v)| v.saturating_sub(earlier.get(l).copied().unwrap_or(0)))
            .collect()
    }
}

/// A point-in-time view of a whole [`crate::ShardedStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Recovery epoch of the store the snapshot was taken from.
    pub epoch: u64,
    /// Store-wide worst-case completed-update loss per crash.
    pub loss_bound: u64,
    /// True when all shards share one runtime: per-shard `stats` then all
    /// read the same global counters, and summing them would overcount.
    pub shared_counters: bool,
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardMetrics>,
}

impl StoreMetrics {
    /// Counter-wise difference `self − earlier`, shard by shard.
    ///
    /// # Panics
    /// Panics if the two snapshots have different shard counts (snapshots
    /// of different stores).
    pub fn delta(&self, earlier: &StoreMetrics) -> StoreMetrics {
        assert_eq!(
            self.shards.len(),
            earlier.shards.len(),
            "delta between snapshots of different stores"
        );
        StoreMetrics {
            epoch: self.epoch,
            loss_bound: self.loss_bound,
            shared_counters: self.shared_counters,
            shards: self
                .shards
                .iter()
                .zip(&earlier.shards)
                .map(|(now, then)| now.delta(then))
                .collect(),
        }
    }

    /// Total completed updates across shards.
    pub fn total_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed_tail).sum()
    }

    /// Total read-fast-path misses across shards.
    pub fn total_read_slow_paths(&self) -> u64 {
        self.shards.iter().map(|s| s.read_slow_paths).sum()
    }

    /// Total validated optimistic fast-path reads across shards.
    pub fn total_read_fast_optimistic(&self) -> u64 {
        self.shards.iter().map(|s| s.read_fast_optimistic).sum()
    }

    /// Total optimistic validation failures across shards.
    pub fn total_read_validation_failures(&self) -> u64 {
        self.shards.iter().map(|s| s.read_validation_failures).sum()
    }

    /// Total combine rounds across every log of every multi-log shard
    /// (0 for a single-log store: the per-log counter is the multi-log
    /// combiner's).
    pub fn total_combine_rounds(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lane_combine_rounds.iter().sum::<u64>())
            .sum()
    }

    /// Store-wide persistence counters: the shared counters read once when
    /// all shards share a runtime, the per-shard sum otherwise.
    pub fn total_stats(&self) -> PmemStatsSnapshot {
        if self.shared_counters {
            self.shards.first().map(|s| s.stats).unwrap_or_default()
        } else {
            let mut acc = PmemStatsSnapshot::default();
            // Summation via delta against the zero snapshot is not provided
            // upstream; accumulate field-by-field through the public fields.
            for s in &self.shards {
                acc.clflush += s.stats.clflush;
                acc.clflushopt += s.stats.clflushopt;
                acc.sfence += s.stats.sfence;
                acc.wbinvd += s.stats.wbinvd;
                acc.bytes_persisted += s.stats.bytes_persisted;
                acc.snapshots += s.stats.snapshots;
                acc.checkpoints += s.stats.checkpoints;
                acc.checkpoint_bytes += s.stats.checkpoint_bytes;
                acc.checkpoint_lines += s.stats.checkpoint_lines;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, ct: u64, wm: u64, slow: u64, clflush: u64) -> ShardMetrics {
        ShardMetrics {
            shard: i,
            completed_tail: ct,
            durable_watermark: wm,
            read_slow_paths: slow,
            read_fast_optimistic: slow * 10,
            read_validation_failures: slow / 2,
            lane_completed_tails: vec![ct / 2, ct - ct / 2],
            lane_durable_watermarks: vec![wm / 2, wm - wm / 2],
            lane_combine_rounds: vec![ct, ct + 1],
            stats: PmemStatsSnapshot {
                clflush,
                ..Default::default()
            },
        }
    }

    #[test]
    fn delta_subtracts_per_shard_counters() {
        let t0 = StoreMetrics {
            epoch: 0,
            loss_bound: 16,
            shared_counters: false,
            shards: vec![shard(0, 10, 5, 1, 100), shard(1, 20, 20, 0, 50)],
        };
        let t1 = StoreMetrics {
            epoch: 0,
            loss_bound: 16,
            shared_counters: false,
            shards: vec![shard(0, 25, 20, 4, 130), shard(1, 21, 21, 2, 55)],
        };
        let d = t1.delta(&t0);
        assert_eq!(d.shards[0].completed_tail, 15);
        assert_eq!(d.shards[0].durable_watermark, 15);
        assert_eq!(d.shards[0].lane_completed_tails, vec![7, 8]);
        assert_eq!(d.shards[0].lane_combine_rounds, vec![15, 15]);
        assert_eq!(d.total_combine_rounds(), 32);
        assert_eq!(d.shards[0].stats.clflush, 30);
        assert_eq!(d.shards[1].completed_tail, 1);
        assert_eq!(d.total_completed(), 16);
        assert_eq!(d.total_read_slow_paths(), 5);
        assert_eq!(d.total_read_fast_optimistic(), 50);
        assert_eq!(d.total_read_validation_failures(), 3);
        assert_eq!(d.total_stats().clflush, 35);
    }

    #[test]
    fn shared_counters_are_not_summed() {
        let m = StoreMetrics {
            epoch: 2,
            loss_bound: 0,
            shared_counters: true,
            shards: vec![shard(0, 1, 1, 0, 40), shard(1, 1, 1, 0, 40)],
        };
        // Both shards observed the same global counter; reporting 80 would
        // double-count.
        assert_eq!(m.total_stats().clflush, 40);
    }

    #[test]
    #[should_panic(expected = "different stores")]
    fn delta_rejects_mismatched_shard_counts() {
        let a = StoreMetrics {
            epoch: 0,
            loss_bound: 0,
            shared_counters: true,
            shards: vec![shard(0, 1, 1, 0, 0)],
        };
        let b = StoreMetrics {
            epoch: 0,
            loss_bound: 0,
            shared_counters: true,
            shards: Vec::new(),
        };
        let _ = a.delta(&b);
    }
}
