//! Per-shard linearizability of a live [`ShardedStore`].
//!
//! The sharded correctness condition is "each shard is linearizable; no
//! cross-shard order is promised". This test runs concurrent workers
//! through a real store while a [`ShardedHistoryRecorder`] (one shared
//! logical clock, one event list per shard) captures every operation, then
//! checks each shard's history independently with the Wing–Gong search.

use std::sync::Arc;

use prep_checker::{check_sharded_linearizable, ShardedHistoryRecorder};
use prep_pmem::PmemRuntime;
use prep_seqds::hashmap::{HashMap, MapOp};
use prep_shard::ShardedStore;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PrepConfig};
use rand::{Rng, SeedableRng};

fn map_key(op: &MapOp) -> u64 {
    match *op {
        MapOp::Insert { key, .. }
        | MapOp::Remove { key }
        | MapOp::Get { key }
        | MapOp::Contains { key } => key,
        MapOp::Len => 0,
    }
}

#[test]
fn concurrent_sharded_history_is_linearizable_per_shard() {
    const THREADS: usize = 3;
    const OPS_PER_THREAD: usize = 16;
    const SHARDS: usize = 2;
    // A small shared key space so threads actually contend on each shard.
    const KEYS: u64 = 4;

    let asg = Topology::small().assign_workers(THREADS);
    let cfg = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(256)
        .with_epsilon(32)
        .with_runtime(PmemRuntime::for_crash_tests());
    let store = Arc::new(ShardedStore::new(HashMap::new(), SHARDS, asg, cfg, map_key));
    let rec = Arc::new(ShardedHistoryRecorder::new(SHARDS));

    std::thread::scope(|s| {
        for w in 0..THREADS {
            let store = Arc::clone(&store);
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let token = store.register(w);
                let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0FFEE + w as u64);
                for _ in 0..OPS_PER_THREAD {
                    let key = rng.gen_range(0..KEYS);
                    let op = match rng.gen_range(0u32..4) {
                        0 => MapOp::Insert {
                            key,
                            value: rng.gen_range(0..1_000u64),
                        },
                        1 => MapOp::Remove { key },
                        2 => MapOp::Get { key },
                        _ => MapOp::Contains { key },
                    };
                    let shard = store.shard_of(&op);
                    let stamp = rec.invoke();
                    let resp = store.execute(&token, op);
                    rec.complete(shard, w, op, resp, stamp);
                }
            });
        }
    });

    let histories = Arc::try_unwrap(rec)
        .expect("all workers joined")
        .into_histories();
    assert_eq!(
        histories.iter().map(Vec::len).sum::<usize>(),
        THREADS * OPS_PER_THREAD,
        "every operation must be recorded on exactly one shard"
    );
    if let Err(shard) = check_sharded_linearizable(&HashMap::new(), &histories) {
        panic!("shard {shard} produced a non-linearizable history");
    }
}
