//! Key-popularity distributions for the load generator.
//!
//! Uniform and zipfian mixes over a dense key space `[0, n)`. The zipfian
//! sampler precomputes the CDF once (O(n) build, O(log n) sample via
//! binary search) — exact, allocation-free sampling on the hot path, which
//! matters because the open-loop engine samples a key per scheduled
//! arrival. Dense ranks map straight to keys: the server's shard router
//! already mixes bits (`splitmix64`), so rank 0 being the hottest key does
//! not concentrate load on shard 0.

use rand::{Rng, RngCore};

/// Which popularity curve to draw keys from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyMix {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with exponent `theta` (YCSB-style skew at `theta = 0.99`).
    Zipfian {
        /// The skew exponent; larger = more skew toward low ranks.
        theta: f64,
    },
}

/// A sampler over keys `[0, n)` with a fixed [`KeyMix`].
pub struct KeySampler {
    n: u64,
    /// Cumulative probability per rank; `None` for the uniform mix.
    cdf: Option<Vec<f64>>,
}

impl KeySampler {
    /// Builds the sampler (precomputing the zipfian CDF when needed).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(mix: KeyMix, n: u64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        let cdf = match mix {
            KeyMix::Uniform => None,
            KeyMix::Zipfian { theta } => {
                let mut weights: Vec<f64> = (0..n)
                    .map(|rank| 1.0 / ((rank + 1) as f64).powf(theta))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in weights.iter_mut() {
                    acc += *w / total;
                    *w = acc;
                }
                // Guard the tail against accumulated rounding: the final
                // entry must cover every sample in [0, 1).
                if let Some(last) = weights.last_mut() {
                    *last = 1.0;
                }
                Some(weights)
            }
        };
        KeySampler { n, cdf }
    }

    /// Draws one key.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
        match &self.cdf {
            None => rng.gen_range(0..self.n),
            Some(cdf) => {
                let u: f64 = rng.gen();
                // partition_point: first rank whose cumulative mass covers u.
                cdf.partition_point(|&c| c < u) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_space_evenly() {
        let s = KeySampler::new(KeyMix::Uniform, 16);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u64; 16];
        for _ in 0..16_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((600..1400).contains(&c), "uniform bucket count {c}");
        }
    }

    #[test]
    fn zipfian_skews_toward_low_ranks() {
        let s = KeySampler::new(KeyMix::Zipfian { theta: 0.99 }, 1000);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut head = 0u64;
        const N: u64 = 20_000;
        for _ in 0..N {
            if s.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 over 1000 keys the top-10 ranks carry ~39% of
        // the mass; uniform would give 1%.
        let frac = head as f64 / N as f64;
        assert!(frac > 0.25, "zipf head mass {frac} too small");
    }

    #[test]
    fn samples_stay_in_range() {
        for mix in [KeyMix::Uniform, KeyMix::Zipfian { theta: 1.2 }] {
            let s = KeySampler::new(mix, 37);
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..5000 {
                assert!(s.sample(&mut rng) < 37);
            }
        }
    }
}
