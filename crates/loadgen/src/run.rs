//! The open-loop engine.
//!
//! Closed-loop clients (send, wait, send) let a slow server set the pace,
//! hiding queueing delay — the coordinated-omission trap. This engine is
//! **open-loop**: every connection derives an *arrival schedule* from
//! the offered rate before the run starts (see [`crate::arrivals`] for the
//! fixed-lattice, Poisson, and bursty processes), sends each request at its
//! scheduled instant whether or not earlier responses have returned, and
//! measures latency **from the scheduled send time**. A request the
//! generator itself sent late (because the previous send blocked) is
//! charged that lateness, exactly as a real client arriving then would
//! experience it.
//!
//! Under the default fixed lattice, connection `i` of `c` owns arrivals
//! `i, i+c, i+2c, …` of the global schedule (interval `1/rate`), so the
//! aggregate offered load is `rate`
//! regardless of the connection count. Between arrivals the socket blocks
//! in `read` with a deadline at the next send, so responses are timestamped
//! promptly rather than at the next polling tick. `RETRY` responses count
//! as shed load (the backpressure contract), not latency samples.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use prep_serve::proto::{self, AckLevel, AdminCmd, Request, Response};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::{Arrival, ArrivalGen};
use crate::clock::Clock;
use crate::hist::LatencyHistogram;
use crate::keys::{KeyMix, KeySampler};

/// Request id carried by the crash-injection admin frame.
const CRASH_ID: u64 = u64::MAX;
/// Request id carried by the end-of-run shutdown frame.
const SHUTDOWN_ID: u64 = u64::MAX - 1;
/// How long after the send window the engine waits for stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One load-generation run's parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Client connections; the offered rate is split across them.
    pub conns: usize,
    /// Aggregate offered load, requests/second.
    pub rate: f64,
    /// Measured window length.
    pub duration_ms: u64,
    /// Schedule prefix whose completions are not recorded.
    pub warmup_ms: u64,
    /// Dense key space `[0, keys)`.
    pub keys: u64,
    /// Key popularity curve.
    pub mix: KeyMix,
    /// Fraction of requests that are GETs (the rest are PUTs).
    pub get_fraction: f64,
    /// Ack level requested on updates.
    pub ack: AckLevel,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
    /// Keys preloaded (PUT) before the timed window.
    pub preload: u64,
    /// Arrival process shaping the schedule (fixed lattice, Poisson,
    /// bursty on/off); all preserve the aggregate offered rate.
    pub arrival: Arrival,
    /// Inject `ADMIN CRASH` this far into the measured window.
    pub crash_at_ms: Option<u64>,
    /// Send `ADMIN SHUTDOWN` after the run and wait for the ack.
    pub shutdown: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            addr: String::from("127.0.0.1:7070"),
            conns: 2,
            rate: 5_000.0,
            duration_ms: 2_000,
            warmup_ms: 200,
            keys: 10_000,
            mix: KeyMix::Uniform,
            get_fraction: 0.5,
            ack: AckLevel::Buffered,
            seed: 42,
            preload: 1_000,
            arrival: Arrival::Fixed,
            crash_at_ms: None,
            shutdown: false,
        }
    }
}

/// Crash-injection observations (present when `crash_at_ms` was set).
#[derive(Debug, Clone, Copy)]
pub struct CrashProbe {
    /// When the `ADMIN CRASH` frame was sent (ns on the run clock).
    pub requested_ns: u64,
    /// Server's crash ack (recovery finished), ns on the run clock.
    pub acked_ns: Option<u64>,
    /// First *data* response completed after the crash request — the
    /// client-observed time-to-first-response across the outage.
    pub first_data_ns: Option<u64>,
}

impl CrashProbe {
    /// Recovery time-to-first-response in nanoseconds, if observed.
    pub fn ttfr_ns(&self) -> Option<u64> {
        self.first_data_ns
            .map(|t| t.saturating_sub(self.requested_ns))
    }
}

/// Aggregated results of one run.
pub struct RunReport {
    /// Requests sent inside the measured window.
    pub sent: u64,
    /// Measured-window requests that completed successfully.
    pub completed: u64,
    /// Requests shed by server backpressure (`RETRY`).
    pub shed: u64,
    /// Error responses (e.g. sent into a draining server).
    pub errors: u64,
    /// Requests never answered before the drain grace expired.
    pub lost: u64,
    /// Latency of every completed request (from scheduled send time).
    pub hist: LatencyHistogram,
    /// Latency of completed updates only (the ack-level contrast).
    pub update_hist: LatencyHistogram,
    /// Wall-clock length of the measured window actually achieved.
    pub elapsed_ns: u64,
    /// Crash-injection observations, when requested.
    pub crash: Option<CrashProbe>,
}

impl RunReport {
    /// Completed requests per second over the measured window.
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.elapsed_ns as f64
    }
}

struct PendingOp {
    sched_ns: u64,
    update: bool,
    warmup: bool,
}

struct ConnOutcome {
    sent: u64,
    completed: u64,
    shed: u64,
    errors: u64,
    lost: u64,
    hist: LatencyHistogram,
    update_hist: LatencyHistogram,
    crash: Option<CrashProbe>,
}

/// Runs the workload and blocks until every connection drains.
pub fn run(cfg: &RunConfig) -> std::io::Result<RunReport> {
    assert!(cfg.conns > 0, "need at least one connection");
    assert!(cfg.rate > 0.0, "rate must be positive");
    if cfg.preload > 0 {
        preload(cfg)?;
    }
    let clock = std::sync::Arc::new(Clock::new());
    // Arrivals start slightly in the future so every thread is connected
    // before arrival 0 — lateness at the very front would otherwise be
    // charged to the server.
    let start_ns = clock.now_ns() + 50_000_000;
    let outcomes: Vec<std::io::Result<ConnOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|i| {
                let clock = std::sync::Arc::clone(&clock);
                scope.spawn(move || conn_worker(cfg, i, &clock, start_ns))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut report = RunReport {
        sent: 0,
        completed: 0,
        shed: 0,
        errors: 0,
        lost: 0,
        hist: LatencyHistogram::new(),
        update_hist: LatencyHistogram::new(),
        elapsed_ns: cfg.duration_ms.saturating_sub(cfg.warmup_ms) * 1_000_000,
        crash: None,
    };
    for outcome in outcomes {
        let o = outcome?;
        report.sent += o.sent;
        report.completed += o.completed;
        report.shed += o.shed;
        report.errors += o.errors;
        report.lost += o.lost;
        report.hist.merge(&o.hist);
        report.update_hist.merge(&o.update_hist);
        if o.crash.is_some() {
            report.crash = o.crash;
        }
    }
    if cfg.shutdown {
        shutdown_server(cfg)?;
    }
    Ok(report)
}

/// Populates keys `[0, preload)` over one blocking connection, pipelined
/// in chunks so the preload phase is not itself closed-loop-slow.
fn preload(cfg: &RunConfig) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
    let mut buf = Vec::new();
    let mut rbuf = Vec::new();
    let mut tmp = [0u8; 4096];
    const CHUNK: u64 = 128;
    let mut key = 0u64;
    while key < cfg.preload {
        buf.clear();
        let end = (key + CHUNK).min(cfg.preload);
        for k in key..end {
            proto::encode_request(
                &Request::Put {
                    id: k,
                    ack: AckLevel::Buffered,
                    key: k,
                    value: rng.gen(),
                },
                &mut buf,
            );
        }
        stream.write_all(&buf)?;
        let mut acked = 0;
        while acked < end - key {
            while let Some((resp, used)) = proto::decode_response(&rbuf).expect("preload decode") {
                rbuf.drain(..used);
                match resp {
                    Response::Done { .. } => acked += 1,
                    Response::Retry { id } => {
                        // Shed during preload: replay that key immediately.
                        let mut again = Vec::new();
                        proto::encode_request(
                            &Request::Put {
                                id,
                                ack: AckLevel::Buffered,
                                key: id,
                                value: rng.gen(),
                            },
                            &mut again,
                        );
                        stream.write_all(&again)?;
                    }
                    other => panic!("unexpected preload response {other:?}"),
                }
            }
            if acked < end - key {
                let n = stream.read(&mut tmp)?;
                assert!(n > 0, "server closed during preload");
                rbuf.extend_from_slice(&tmp[..n]);
            }
        }
        key = end;
    }
    Ok(())
}

/// Sends `ADMIN SHUTDOWN` and waits for the ack.
fn shutdown_server(cfg: &RunConfig) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut buf = Vec::new();
    proto::encode_request(
        &Request::Admin {
            id: SHUTDOWN_ID,
            cmd: AdminCmd::Shutdown,
        },
        &mut buf,
    );
    stream.write_all(&buf)?;
    let mut rbuf = Vec::new();
    let mut tmp = [0u8; 256];
    loop {
        if let Some((resp, used)) = proto::decode_response(&rbuf).expect("shutdown decode") {
            rbuf.drain(..used);
            assert_eq!(resp, Response::Done { id: SHUTDOWN_ID });
            return Ok(());
        }
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Ok(());
        }
        rbuf.extend_from_slice(&tmp[..n]);
    }
}

/// One connection: send on schedule, receive with a deadline at the next
/// scheduled send.
fn conn_worker(
    cfg: &RunConfig,
    index: usize,
    clock: &Clock,
    start_ns: u64,
) -> std::io::Result<ConnOutcome> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(index as u64 * 0x517c_c1b7));
    let sampler = KeySampler::new(cfg.mix, cfg.keys);
    let mut arrivals = ArrivalGen::new(
        cfg.arrival,
        cfg.rate,
        cfg.conns,
        index,
        cfg.seed.wrapping_add(index as u64 * 0x2545_f491),
    );

    let end_ns = start_ns + cfg.duration_ms * 1_000_000;
    let warmup_end_ns = start_ns + cfg.warmup_ms * 1_000_000;
    let crash_ns = cfg
        .crash_at_ms
        .map(|ms| start_ns + cfg.warmup_ms.saturating_add(ms) * 1_000_000);

    let mut o = ConnOutcome {
        sent: 0,
        completed: 0,
        shed: 0,
        errors: 0,
        lost: 0,
        hist: LatencyHistogram::new(),
        update_hist: LatencyHistogram::new(),
        crash: None,
    };
    let mut pending: HashMap<u64, PendingOp> = HashMap::new();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 8192];
    let mut k = 0u64; // this connection's arrival counter (also request id)
    let mut crash_sent = false;

    loop {
        // Next arrival of this connection's share of the schedule.
        let sched_ns = start_ns + arrivals.next_offset_ns();
        if sched_ns >= end_ns {
            break;
        }
        // Crash injection rides connection 0's schedule.
        if let Some(c_ns) = crash_ns {
            if index == 0 && !crash_sent && sched_ns >= c_ns {
                let mut buf = Vec::new();
                proto::encode_request(
                    &Request::Admin {
                        id: CRASH_ID,
                        cmd: AdminCmd::Crash,
                    },
                    &mut buf,
                );
                clock.sleep_until(c_ns);
                stream.write_all(&buf)?;
                o.crash = Some(CrashProbe {
                    requested_ns: clock.now_ns(),
                    acked_ns: None,
                    first_data_ns: None,
                });
                crash_sent = true;
            }
        }
        // Block in read until the next scheduled send, timestamping
        // responses as they land.
        receive_until(
            &mut stream,
            &mut rbuf,
            &mut tmp,
            clock,
            sched_ns,
            &mut pending,
            &mut o,
        )?;

        let warmup = sched_ns < warmup_end_ns;
        let req = if rng.gen_bool(cfg.get_fraction) {
            Request::Get {
                id: k,
                key: sampler.sample(&mut rng),
            }
        } else {
            Request::Put {
                id: k,
                ack: cfg.ack,
                key: sampler.sample(&mut rng),
                value: rng.gen(),
            }
        };
        let update = matches!(req, Request::Put { .. });
        let mut buf = Vec::with_capacity(32);
        proto::encode_request(&req, &mut buf);
        stream.write_all(&buf)?;
        pending.insert(
            k,
            PendingOp {
                sched_ns,
                update,
                warmup,
            },
        );
        if !warmup {
            o.sent += 1;
        }
        k += 1;
    }

    // Drain stragglers for a bounded grace period.
    let deadline = clock.now_ns() + DRAIN_GRACE.as_nanos() as u64;
    while !pending.is_empty() && clock.now_ns() < deadline {
        receive_until(
            &mut stream,
            &mut rbuf,
            &mut tmp,
            clock,
            clock.now_ns() + 50_000_000,
            &mut pending,
            &mut o,
        )?;
    }
    o.lost = pending.values().filter(|p| !p.warmup).count() as u64;
    Ok(o)
}

/// Reads and accounts responses until `deadline_ns` on the run clock.
#[allow(clippy::too_many_arguments)]
fn receive_until(
    stream: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    tmp: &mut [u8],
    clock: &Clock,
    deadline_ns: u64,
    pending: &mut HashMap<u64, PendingOp>,
    o: &mut ConnOutcome,
) -> std::io::Result<()> {
    loop {
        // Account everything already buffered.
        while let Some((resp, used)) = proto::decode_response(rbuf).expect("response decode") {
            rbuf.drain(..used);
            account(resp, clock.now_ns(), pending, o);
        }
        let now = clock.now_ns();
        if now >= deadline_ns {
            stream.set_read_timeout(None)?;
            return Ok(());
        }
        let wait = Duration::from_nanos((deadline_ns - now).max(1_000));
        stream.set_read_timeout(Some(wait))?;
        match stream.read(tmp) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ))
            }
            Ok(n) => rbuf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                stream.set_read_timeout(None)?;
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Accounts one response against the pending table.
fn account(
    resp: Response,
    now_ns: u64,
    pending: &mut HashMap<u64, PendingOp>,
    o: &mut ConnOutcome,
) {
    let id = resp.id();
    if id == CRASH_ID {
        if let (Response::Done { .. }, Some(probe)) = (&resp, o.crash.as_mut()) {
            probe.acked_ns = Some(now_ns);
        }
        return;
    }
    let Some(op) = pending.remove(&id) else {
        return;
    };
    match resp {
        Response::Value { .. } | Response::Done { .. } | Response::Pairs { .. } => {
            if let Some(probe) = o.crash.as_mut() {
                if probe.first_data_ns.is_none() {
                    probe.first_data_ns = Some(now_ns);
                }
            }
            if op.warmup {
                return;
            }
            o.completed += 1;
            let latency = now_ns.saturating_sub(op.sched_ns);
            o.hist.record(latency);
            if op.update {
                o.update_hist.record(latency);
            }
        }
        Response::Retry { .. } => {
            if !op.warmup {
                o.shed += 1;
            }
        }
        Response::Err { .. } => {
            if !op.warmup {
                o.errors += 1;
            }
        }
        Response::Stats { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_serve::server::{ServeConfig, Server};

    fn server() -> Server {
        Server::start(
            ServeConfig {
                shards: 2,
                executors_per_shard: 2,
                conn_threads: 1,
                epsilon: 16,
                log_size: 1024,
                crash_sim: true,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("start server")
    }

    #[test]
    fn open_loop_run_completes_and_measures() {
        let server = server();
        let cfg = RunConfig {
            addr: server.local_addr().to_string(),
            conns: 2,
            rate: 4_000.0,
            duration_ms: 400,
            warmup_ms: 100,
            keys: 512,
            preload: 128,
            get_fraction: 0.5,
            ..RunConfig::default()
        };
        let report = run(&cfg).expect("run");
        assert!(report.sent > 0);
        assert!(report.completed > 0, "no requests completed");
        assert_eq!(report.lost, 0, "responses went missing");
        assert!(report.hist.count() == report.completed);
        assert!(report.hist.percentile(0.5) > 0);
        assert!(report.achieved_rate() > 0.0);
        // Updates are a subset of all completions.
        assert!(report.update_hist.count() <= report.hist.count());
        server.shutdown();
    }

    #[test]
    fn poisson_and_bursty_arrivals_drive_a_run() {
        let server = server();
        for arrival in [
            Arrival::Poisson,
            Arrival::Bursty {
                on_ms: 20,
                off_ms: 60,
            },
        ] {
            let cfg = RunConfig {
                addr: server.local_addr().to_string(),
                conns: 2,
                rate: 4_000.0,
                duration_ms: 400,
                warmup_ms: 50,
                keys: 256,
                preload: 64,
                arrival,
                ..RunConfig::default()
            };
            let report = run(&cfg).expect("run");
            assert!(report.completed > 0, "{arrival:?}: nothing completed");
            assert_eq!(report.lost, 0, "{arrival:?}: responses went missing");
            // The non-lattice processes still target the aggregate rate:
            // within a factor of two on this short window.
            let achieved = report.achieved_rate();
            assert!(
                achieved > cfg.rate * 0.3,
                "{arrival:?}: achieved only {achieved}/s of {}/s",
                cfg.rate
            );
        }
        server.shutdown();
    }

    #[test]
    fn durable_acks_flow_end_to_end() {
        let server = server();
        let cfg = RunConfig {
            addr: server.local_addr().to_string(),
            conns: 1,
            rate: 2_000.0,
            duration_ms: 300,
            warmup_ms: 50,
            keys: 256,
            preload: 0,
            get_fraction: 0.0,
            ack: AckLevel::Durable,
            ..RunConfig::default()
        };
        let report = run(&cfg).expect("run");
        assert!(report.completed > 0);
        assert_eq!(report.lost, 0);
        let r = server.shutdown();
        assert!(r.durable_acks > 0, "server released no durable acks");
    }

    #[test]
    fn crash_under_load_reports_ttfr() {
        let server = server();
        let cfg = RunConfig {
            addr: server.local_addr().to_string(),
            conns: 2,
            rate: 3_000.0,
            duration_ms: 600,
            warmup_ms: 50,
            keys: 256,
            preload: 64,
            crash_at_ms: Some(200),
            ..RunConfig::default()
        };
        let report = run(&cfg).expect("run");
        let probe = report.crash.expect("crash probe");
        assert!(probe.acked_ns.is_some(), "crash never acked");
        let ttfr = probe.ttfr_ns().expect("no post-crash response");
        assert!(ttfr > 0);
        assert_eq!(server.crash_count(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_flag_stops_the_server() {
        let server = server();
        let cfg = RunConfig {
            addr: server.local_addr().to_string(),
            conns: 1,
            rate: 1_000.0,
            duration_ms: 200,
            warmup_ms: 0,
            preload: 0,
            shutdown: true,
            ..RunConfig::default()
        };
        run(&cfg).expect("run");
        // The server reached STOPPED because of the wire shutdown.
        let report = server.join();
        assert_eq!(report.completed_tails, report.durable_watermarks);
    }
}
