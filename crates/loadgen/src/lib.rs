//! # prep-loadgen — open-loop load generation for prep-serve
//!
//! Three pieces, each deliberately small:
//!
//! * [`hist`] — an HDR-style log-bucketed latency histogram (~3% relative
//!   error, mergeable, allocation-free recording) for p50/p99/p999.
//! * [`keys`] — uniform and zipfian key-popularity samplers.
//! * [`arrivals`] — arrival processes (fixed lattice, Poisson, bursty
//!   on/off), all preserving the aggregate offered rate.
//! * [`run`] — the open-loop engine: arrival schedules derived from
//!   the offered rate, latency measured from *scheduled* send time
//!   (coordinated-omission-free), `RETRY` counted as shed load, optional
//!   crash injection with time-to-first-response measurement.
//!
//! All wall-clock access lives in [`clock`]; the rest of the crate —
//! like the server it drives — never touches `Instant` directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod clock;
pub mod hist;
pub mod keys;
pub mod run;

pub use arrivals::{Arrival, ArrivalGen};
pub use hist::LatencyHistogram;
pub use keys::{KeyMix, KeySampler};
pub use run::{CrashProbe, RunConfig, RunReport};
