//! HDR-style log-bucketed latency histogram.
//!
//! Values (nanoseconds) land in buckets whose width grows geometrically:
//! each power-of-two range splits into `SUB = 32` linear sub-buckets, so
//! every recorded value is reproducible to within ~3% relative error while
//! the whole 64-bit range fits in a few kilobytes of counters. That is the
//! property a tail-latency benchmark needs — p999 of a multi-millisecond
//! distribution resolved without pre-declaring a range, merges that are
//! plain vector adds, and no per-sample allocation on the hot path.

/// log2 of the sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two range (relative error ≤ 1/SUB).
const SUB: usize = 1 << SUB_BITS;
/// Bucket groups: values below 2^SUB_BITS are exact (group 0), then one
/// group per remaining bit position.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;

/// A mergeable log-bucketed histogram of `u64` samples (latency in ns).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; GROUPS * SUB],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((value >> (msb - SUB_BITS)) as usize) - SUB;
        group * SUB + sub
    }

    /// Upper edge of bucket `idx` — the reported quantile value, so
    /// percentiles err conservatively (never under-report a latency).
    fn upper_edge(idx: usize) -> u64 {
        let group = idx / SUB;
        let sub = idx % SUB;
        if group == 0 {
            return sub as u64;
        }
        let msb = group as u32 + SUB_BITS - 1;
        // The topmost bucket's upper edge is 2^64; saturate instead of
        // overflowing the shift (callers clamp to the observed max anyway).
        let wide = ((SUB + sub + 1) as u128) << (msb - SUB_BITS);
        wide.min(u64::MAX as u128) as u64
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample (exact, not bucketed); 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean (exact sum over bucketed count); 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (e.g. `0.999` for p999):
    /// the upper edge of the bucket holding the `ceil(q·count)`-th sample,
    /// clamped to the exact observed maximum. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_edge(idx).min(self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("p999", &self.percentile(0.999))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        // Below 2^SUB_BITS every value has its own bucket.
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.max(), SUB as u64 - 1);
        assert_eq!(h.count(), SUB as u64);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 137);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!(p50 <= p99 && p99 <= p999 && p999 <= h.max());
        // ~3% relative-error bound at each quantile.
        let expect = |q: f64| (10_000.0 * q) as u64 * 137;
        for (got, want) in [
            (p50, expect(0.5)),
            (p99, expect(0.99)),
            (p999, expect(0.999)),
        ] {
            let err = got.abs_diff(want) as f64 / want as f64;
            assert!(err < 0.05, "quantile off by {err}: got {got}, want ~{want}");
        }
    }

    #[test]
    fn merge_is_sample_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn huge_values_do_not_overflow_the_index() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
