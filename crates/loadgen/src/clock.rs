//! The load generator's single wall-clock authority.
//!
//! Everything time-related in prep-loadgen funnels through this file: the
//! open-loop engine works in nanoseconds-since-origin (`u64`), never in
//! `Instant`s, so the rest of the crate stays free of timer calls and the
//! workspace lint can pin its `Instant::now` / `thread::sleep` allowance
//! to exactly this file. A load *generator* is the one component whose job
//! is real time — unlike the server, whose latency accounting lives in the
//! simulated-NVM cost model.

use std::time::{Duration, Instant};

/// How far ahead of the target `sleep_until` trusts the OS timer; the
/// remainder is spun. Linux wakes sleeps late by tens of microseconds —
/// oversleeping would turn the open-loop schedule into a closed loop.
const SPIN_SLACK_NS: u64 = 200_000;

/// A monotonic clock with a fixed origin.
pub struct Clock {
    origin: Instant,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// Starts the clock; `now_ns` measures from this call.
    pub fn new() -> Self {
        Clock {
            // lint:allow(forbidden-api): the load generator is the component
            // that measures real wall-clock latency; this module is the
            // crate's single timer authority.
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since the clock started.
    pub fn now_ns(&self) -> u64 {
        // lint:allow(forbidden-api): see `Clock::new`.
        Instant::now().duration_since(self.origin).as_nanos() as u64
    }

    /// Sleeps until `target_ns` on this clock's timeline: OS sleep for the
    /// bulk, spin for the final [`SPIN_SLACK_NS`] so arrivals do not slip.
    /// Returns immediately if the target has passed (the open-loop engine
    /// then sends the overdue request and records the queueing delay).
    pub fn sleep_until(&self, target_ns: u64) {
        loop {
            let now = self.now_ns();
            if now >= target_ns {
                return;
            }
            let ahead = target_ns - now;
            if ahead > SPIN_SLACK_NS {
                // lint:allow(forbidden-api): pacing the offered load is this
                // crate's purpose; only the bulk wait uses the OS timer.
                std::thread::sleep(Duration::from_nanos(ahead - SPIN_SLACK_NS));
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotone() {
        let c = Clock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn sleep_until_reaches_the_target() {
        let c = Clock::new();
        let target = c.now_ns() + 2_000_000;
        c.sleep_until(target);
        assert!(c.now_ns() >= target);
        // A target in the past returns immediately.
        c.sleep_until(0);
    }
}
