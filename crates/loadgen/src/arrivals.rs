//! Arrival processes for the open-loop schedule.
//!
//! The engine's original schedule was a fixed lattice: global arrival `n`
//! at `n/rate` seconds, connection `i` of `c` owning arrivals
//! `i, i+c, i+2c, …`. A fixed lattice offers perfectly smooth load, which
//! is kind to queues: real clients arrive in clumps, and it is exactly the
//! clumps that expose tail latency. This module generalizes the schedule
//! to three processes, all preserving the *aggregate* offered rate:
//!
//! * [`Arrival::Fixed`] — the original lattice (default, bit-identical to
//!   the pre-module schedule).
//! * [`Arrival::Poisson`] — memoryless arrivals. Each connection draws
//!   exponential inter-arrival gaps with mean `conns/rate`; the
//!   superposition of `conns` independent Poisson processes of rate
//!   `rate/conns` is a Poisson process of rate `rate`, so the aggregate
//!   is Poisson at the offered rate regardless of the connection count.
//! * [`Arrival::Bursty`] — an on/off (interrupted) process: arrivals come
//!   only during ON windows, at the boosted rate
//!   `rate × (on+off)/on`, so the long-run average stays `rate` while the
//!   instantaneous load during a burst is a multiple of it.
//!
//! Every process yields offsets from the run's start in nanoseconds,
//! strictly ordered per connection, so the engine's send loop and its
//! deadline-based receive need no changes beyond swapping the formula.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An arrival-process selection, parsed from `--arrival`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Fixed lattice: global arrival `n` at exactly `n/rate` seconds.
    Fixed,
    /// Poisson process at the offered rate (exponential gaps per
    /// connection; superposition property keeps the aggregate Poisson).
    Poisson,
    /// On/off bursts: `on_ms` of boosted-rate arrivals, then `off_ms` of
    /// silence, repeating. Average rate equals the offered rate.
    Bursty {
        /// Burst window length, milliseconds (> 0).
        on_ms: u64,
        /// Silence window length, milliseconds.
        off_ms: u64,
    },
}

impl Arrival {
    /// Parses `fixed`, `poisson`, or `bursty:ON,OFF` (window lengths in
    /// milliseconds). Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<Arrival> {
        match s {
            "fixed" => Some(Arrival::Fixed),
            "poisson" => Some(Arrival::Poisson),
            _ => {
                let spec = s.strip_prefix("bursty:")?;
                let (on, off) = spec.split_once(',')?;
                let on_ms: u64 = on.parse().ok()?;
                let off_ms: u64 = off.parse().ok()?;
                if on_ms == 0 {
                    return None;
                }
                Some(Arrival::Bursty { on_ms, off_ms })
            }
        }
    }
}

/// One connection's arrival generator: a stream of schedule offsets (ns
/// from run start), strictly increasing per connection.
#[derive(Debug)]
pub struct ArrivalGen {
    process: Arrival,
    /// Global lattice interval `1/rate`, ns.
    interval_ns: f64,
    conns: u64,
    index: u64,
    /// Arrival counter (the `k` of the fixed lattice).
    k: u64,
    /// Running offset for the Poisson process, ns.
    poisson_at_ns: f64,
    /// RNG for exponential gaps; unused by deterministic processes. Kept
    /// separate from the op-mix RNG so switching processes never perturbs
    /// the key/op stream.
    rng: SmallRng,
}

impl ArrivalGen {
    /// Builds the generator for connection `index` of `conns`, offered
    /// aggregate `rate` (requests/second).
    pub fn new(process: Arrival, rate: f64, conns: usize, index: usize, seed: u64) -> ArrivalGen {
        assert!(rate > 0.0, "rate must be positive");
        assert!(conns > 0, "need at least one connection");
        ArrivalGen {
            process,
            interval_ns: 1e9 / rate,
            conns: conns as u64,
            index: index as u64,
            k: 0,
            poisson_at_ns: 0.0,
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next arrival offset (ns from run start) for this connection.
    pub fn next_offset_ns(&mut self) -> u64 {
        let k = self.k;
        self.k += 1;
        match self.process {
            Arrival::Fixed => ((k * self.conns + self.index) as f64 * self.interval_ns) as u64,
            Arrival::Poisson => {
                // Exponential gap with mean conns/rate seconds: the
                // superposition across connections is Poisson(rate).
                let u: f64 = self.rng.gen();
                let gap = -(1.0 - u).ln() * self.interval_ns * self.conns as f64;
                self.poisson_at_ns += gap;
                self.poisson_at_ns as u64
            }
            Arrival::Bursty { on_ms, off_ms } => {
                // Deterministic compression of the fixed lattice into ON
                // windows: arrival n sits at cumulative-ON time
                // n × interval × on/(on+off); mapping cumulative-ON time
                // back to wall time re-inserts the OFF gaps.
                let on_ns = on_ms as f64 * 1e6;
                let cycle_ns = (on_ms + off_ms) as f64 * 1e6;
                let boosted = self.interval_ns * on_ns / cycle_ns;
                let v = (k * self.conns + self.index) as f64 * boosted;
                let cycles = (v / on_ns).floor();
                (cycles * cycle_ns + (v - cycles * on_ns)) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_forms_and_rejects_garbage() {
        assert_eq!(Arrival::parse("fixed"), Some(Arrival::Fixed));
        assert_eq!(Arrival::parse("poisson"), Some(Arrival::Poisson));
        assert_eq!(
            Arrival::parse("bursty:50,200"),
            Some(Arrival::Bursty {
                on_ms: 50,
                off_ms: 200
            })
        );
        assert_eq!(Arrival::parse("bursty:0,200"), None); // empty ON window
        assert_eq!(Arrival::parse("bursty:50"), None);
        assert_eq!(Arrival::parse("burst"), None);
        assert_eq!(Arrival::parse("bursty:a,b"), None);
    }

    #[test]
    fn fixed_matches_the_original_lattice() {
        // Connection 1 of 3 at 1000 req/s: arrivals 1, 4, 7, … at 1 ms
        // lattice spacing.
        let mut g = ArrivalGen::new(Arrival::Fixed, 1000.0, 3, 1, 7);
        assert_eq!(g.next_offset_ns(), 1_000_000);
        assert_eq!(g.next_offset_ns(), 4_000_000);
        assert_eq!(g.next_offset_ns(), 7_000_000);
    }

    #[test]
    fn poisson_preserves_the_aggregate_rate() {
        // 4 connections, 10k req/s aggregate, 10k draws per connection:
        // the mean inter-arrival per connection is 4/10k s = 400 µs, so
        // 10k arrivals span ~4 s. Allow 5% statistical slack.
        let mut last_total = 0.0;
        for index in 0..4 {
            let mut g = ArrivalGen::new(Arrival::Poisson, 10_000.0, 4, index, 99 + index as u64);
            let mut last = 0u64;
            let n = 10_000;
            for _ in 0..n {
                let t = g.next_offset_ns();
                assert!(t >= last, "offsets must be monotone");
                last = t;
            }
            last_total += last as f64;
        }
        let mean_span = last_total / 4.0;
        let expected = 4.0e9; // 10k draws × 400 µs
        assert!(
            (mean_span - expected).abs() < 0.05 * expected,
            "mean span {mean_span} vs expected {expected}"
        );
    }

    #[test]
    fn bursty_arrivals_stay_inside_on_windows_at_average_rate() {
        // 1 connection, 1000 req/s, 10 ms ON / 30 ms OFF: all arrivals
        // must land in [cycle_start, cycle_start + 10 ms), and 1000
        // arrivals must span ~1 s (average rate preserved).
        let mut g = ArrivalGen::new(
            Arrival::Bursty {
                on_ms: 10,
                off_ms: 30,
            },
            1000.0,
            1,
            0,
            5,
        );
        let mut last = 0u64;
        for _ in 0..1000 {
            let t = g.next_offset_ns();
            assert!(t >= last, "offsets must be monotone");
            last = t;
            let in_cycle = t % 40_000_000;
            assert!(
                in_cycle < 10_000_000,
                "arrival at {t} ns is in an OFF window"
            );
        }
        assert!(
            (0.9e9..1.1e9).contains(&(last as f64)),
            "1000 arrivals spanned {last} ns, expected ~1e9"
        );
    }
}
