//! `prep-loadgen` binary: shoot an open-loop workload at a prep-serve
//! instance and print the latency distribution.
//!
//! ```text
//! prep-loadgen --addr 127.0.0.1:7070 --rate 5000 --duration-ms 2000
//!              [--conns 2] [--keys 10000] [--mix uniform|zipf:0.99]
//!              [--gets 0.5] [--ack buffered|durable] [--seed 42]
//!              [--preload 1000] [--warmup-ms 200] [--crash-at-ms N]
//!              [--arrival fixed|poisson|bursty:ON,OFF] [--shutdown]
//! ```

use prep_loadgen::arrivals::Arrival;
use prep_loadgen::keys::KeyMix;
use prep_loadgen::run::{run, RunConfig};
use prep_serve::proto::AckLevel;

fn usage() -> ! {
    eprintln!(
        "usage: prep-loadgen [--addr A] [--rate R] [--duration-ms N] [--warmup-ms N]\n\
         \x20                   [--conns N] [--keys N] [--mix uniform|zipf:THETA]\n\
         \x20                   [--gets F] [--ack buffered|durable] [--seed N]\n\
         \x20                   [--preload N] [--crash-at-ms N]\n\
         \x20                   [--arrival fixed|poisson|bursty:ON,OFF] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = RunConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val(&mut args),
            "--rate" => cfg.rate = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--duration-ms" => cfg.duration_ms = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--warmup-ms" => cfg.warmup_ms = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--conns" => cfg.conns = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--keys" => cfg.keys = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                cfg.mix = match val(&mut args).as_str() {
                    "uniform" => KeyMix::Uniform,
                    other => match other.strip_prefix("zipf:") {
                        Some(t) => KeyMix::Zipfian {
                            theta: t.parse().unwrap_or_else(|_| usage()),
                        },
                        None => usage(),
                    },
                }
            }
            "--gets" => cfg.get_fraction = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--ack" => {
                cfg.ack = match val(&mut args).as_str() {
                    "buffered" => AckLevel::Buffered,
                    "durable" => AckLevel::Durable,
                    _ => usage(),
                }
            }
            "--seed" => cfg.seed = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--preload" => cfg.preload = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--crash-at-ms" => {
                cfg.crash_at_ms = Some(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--arrival" => cfg.arrival = Arrival::parse(&val(&mut args)).unwrap_or_else(|| usage()),
            "--shutdown" => cfg.shutdown = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prep-loadgen: {e}");
            std::process::exit(1);
        }
    };
    let us = |ns: u64| ns as f64 / 1_000.0;
    println!(
        "offered {:.0}/s achieved {:.0}/s | sent {} completed {} shed {} errors {} lost {}",
        cfg.rate,
        report.achieved_rate(),
        report.sent,
        report.completed,
        report.shed,
        report.errors,
        report.lost
    );
    println!(
        "latency us: p50 {:.1} p90 {:.1} p99 {:.1} p999 {:.1} max {:.1} (n={})",
        us(report.hist.percentile(0.50)),
        us(report.hist.percentile(0.90)),
        us(report.hist.percentile(0.99)),
        us(report.hist.percentile(0.999)),
        us(report.hist.max()),
        report.hist.count()
    );
    if report.update_hist.count() > 0 {
        println!(
            "updates us: p50 {:.1} p99 {:.1} p999 {:.1} (n={}, ack={:?})",
            us(report.update_hist.percentile(0.50)),
            us(report.update_hist.percentile(0.99)),
            us(report.update_hist.percentile(0.999)),
            report.update_hist.count(),
            cfg.ack
        );
    }
    if let Some(probe) = report.crash {
        match probe.ttfr_ns() {
            Some(ttfr) => println!("crash: time-to-first-response {:.1} us", us(ttfr)),
            None => println!("crash: injected but no post-crash response observed"),
        }
    }
    if report.lost > 0 {
        std::process::exit(1);
    }
}
