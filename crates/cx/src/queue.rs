//! The global operation queue: CX's linearization backbone.
//!
//! An unbounded, append-only sequence of update operations. Position is
//! identity: the i-th enqueued operation is the i-th operation in the
//! linearization order, and every replica independently replays positions
//! `[applied, …)` to catch up.
//!
//! Storage is segmented: a fixed directory of lazily allocated segments, so
//! enqueue is wait-free (fetch-add + slot publish) and readers never take a
//! lock. Entries are never reclaimed during a run (replicas at arbitrary
//! positions may still need them) — matching the original's memory
//! behaviour.
//!
//! Each slot also carries the operation's **response**: the first applier to
//! win the slot's claim CAS computes and publishes the response; appliers on
//! other replicas still apply the operation (their replica needs the state
//! change) but discard their identical response — the sequential object is
//! deterministic, so all appliers compute the same one.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};

use crossbeam_utils::CachePadded;
use prep_sync::Waiter;

const SEG_SHIFT: u32 = 12;
/// Slots per segment.
const SEG_SIZE: u64 = 1 << SEG_SHIFT; // 4096
/// Maximum segments (× SEG_SIZE slots total).
const MAX_SEGS: usize = 1 << 14; // 16384 → 64M ops

const RESP_EMPTY: u8 = 0;
const RESP_CLAIMED: u8 = 1;
const RESP_READY: u8 = 2;

struct Slot<O, R> {
    // shared-line: one slot = one operation; the enqueuer/claimer pair that
    // touches these bytes also hands off `op`/`resp` on the same line, so
    // the line transfer is the protocol, not false sharing.
    ready: AtomicU8, // 0 = empty, 1 = op published
    // shared-line: same handoff line as `ready` (see above).
    resp_state: AtomicU8,
    op: UnsafeCell<Option<O>>,
    resp: UnsafeCell<Option<R>>,
}

// SAFETY: `op` is written once by the enqueuer before `ready` is released;
// `resp` is written once by the claim-CAS winner before `resp_state` is
// released to READY.
unsafe impl<O: Send, R: Send> Send for Slot<O, R> {}
unsafe impl<O: Send + Sync, R: Send> Sync for Slot<O, R> {}

struct Segment<O, R> {
    slots: Box<[Slot<O, R>]>,
}

impl<O, R> Segment<O, R> {
    fn new() -> Box<Self> {
        Box::new(Segment {
            slots: (0..SEG_SIZE)
                .map(|_| Slot {
                    ready: AtomicU8::new(0),
                    resp_state: AtomicU8::new(RESP_EMPTY),
                    op: UnsafeCell::new(None),
                    resp: UnsafeCell::new(None),
                })
                .collect(),
        })
    }
}

/// The unbounded append-only operation queue.
pub struct OpQueue<O, R> {
    // shared-line: written once per segment allocation (every SEG_SIZE
    // ops), read-mostly thereafter; the hot word `tail` below is padded.
    segs: Box<[AtomicPtr<Segment<O, R>>]>,
    tail: CachePadded<AtomicU64>,
}

impl<O: Clone, R> OpQueue<O, R> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let segs: Box<[AtomicPtr<Segment<O, R>>]> = (0..MAX_SEGS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        OpQueue {
            segs,
            tail: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of operations enqueued so far.
    pub fn len(&self) -> u64 {
        // ord: Acquire pairs with enqueue's AcqRel fetch_add release side —
        // a combiner reading len n may consume positions below n.
        self.tail.load(Ordering::Acquire)
    }

    /// True if no operation has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn seg(&self, pos: u64) -> &Segment<O, R> {
        let si = (pos >> SEG_SHIFT) as usize;
        assert!(
            si < MAX_SEGS,
            "CX operation queue exhausted ({MAX_SEGS} segments)"
        );
        // ord: Acquire pairs with the installing CAS's Release — the
        // segment's slots are initialized before we dereference.
        let p = self.segs[si].load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: once installed, a segment is never freed until drop.
            return unsafe { &*p };
        }
        // Allocate and race to install.
        let fresh = Box::into_raw(Segment::new());
        // ord: AcqRel on success — Release publishes the fresh segment's
        // initialization, Acquire orders us after a concurrent installer;
        // Acquire on failure so the winner's segment is safe to deref.
        match self.segs[si].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: we installed it.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: fresh was never shared.
                drop(unsafe { Box::from_raw(fresh) });
                // SAFETY: winner is a valid installed segment.
                unsafe { &*winner }
            }
        }
    }

    fn slot(&self, pos: u64) -> &Slot<O, R> {
        &self.seg(pos).slots[(pos & (SEG_SIZE - 1)) as usize]
    }

    /// Appends `op`; returns its position (= linearization index).
    pub fn enqueue(&self, op: O) -> u64 {
        // ord: AcqRel — the release side publishes the position to len()
        // readers; acquire orders us after prior enqueuers so position
        // ownership is a total order.
        let pos = self.tail.fetch_add(1, Ordering::AcqRel);
        let slot = self.slot(pos);
        // SAFETY: position ownership from fetch_add; ready not yet set.
        unsafe { *slot.op.get() = Some(op) };
        // ord: Release publishes the op write above to op_at's Acquire.
        slot.ready.store(1, Ordering::Release);
        pos
    }

    /// Reads the operation at `pos`, spinning until its enqueuer published
    /// it.
    pub fn op_at(&self, pos: u64) -> O {
        let slot = self.slot(pos);
        let mut w = Waiter::new();
        // ord: Acquire pairs with enqueue's ready Release; the op write is
        // visible before we clone it.
        while slot.ready.load(Ordering::Acquire) == 0 {
            w.wait();
        }
        // SAFETY: ready (acquire) synchronizes with the enqueuer's write.
        unsafe {
            (*slot.op.get())
                .as_ref()
                .expect("ready slot without op")
                .clone()
        }
    }

    /// Attempts to claim the right to publish `pos`'s response. The single
    /// winner must follow up with [`OpQueue::publish_resp`].
    pub fn try_claim_resp(&self, pos: u64) -> bool {
        self.slot(pos)
            .resp_state
            // ord: AcqRel — Release marks the claim before the winner's
            // resp write; Acquire (both outcomes) orders claimants so the
            // loser does not touch the slot.
            .compare_exchange(
                RESP_EMPTY,
                RESP_CLAIMED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Publishes the response for `pos` (claim winner only).
    pub fn publish_resp(&self, pos: u64, resp: R) {
        let slot = self.slot(pos);
        // ord: debug sanity read of our own claimed slot.
        debug_assert_eq!(slot.resp_state.load(Ordering::Relaxed), RESP_CLAIMED);
        // SAFETY: exclusive via the claim CAS.
        unsafe { *slot.resp.get() = Some(resp) };
        // ord: Release publishes the resp write to resp_ready's Acquire.
        slot.resp_state.store(RESP_READY, Ordering::Release);
    }

    /// True once `pos`'s response is published.
    pub fn resp_ready(&self, pos: u64) -> bool {
        // ord: Acquire pairs with publish_resp's Release; once READY the
        // response value is visible to take_resp.
        self.slot(pos).resp_state.load(Ordering::Acquire) == RESP_READY
    }

    /// Takes the response of `pos` (its enqueuer only, once, after
    /// [`OpQueue::resp_ready`]).
    pub fn take_resp(&self, pos: u64) -> R {
        let slot = self.slot(pos);
        debug_assert!(self.resp_ready(pos));
        // SAFETY: READY (acquire) synchronizes with the publisher; only the
        // enqueuer takes.
        unsafe { (*slot.resp.get()).take().expect("response taken twice") }
    }
}

impl<O: Clone, R> Default for OpQueue<O, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O, R> Drop for OpQueue<O, R> {
    fn drop(&mut self) {
        for s in self.segs.iter() {
            // ord: &mut self in drop — no concurrent installers remain.
            let p = s.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: exclusive in drop; segments were Box-allocated.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enqueue_assigns_dense_positions() {
        let q: OpQueue<u64, u64> = OpQueue::new();
        assert!(q.is_empty());
        for i in 0..100u64 {
            assert_eq!(q.enqueue(i * 2), i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100u64 {
            assert_eq!(q.op_at(i), i * 2);
        }
    }

    #[test]
    fn response_claim_has_single_winner() {
        let q: OpQueue<u64, u64> = OpQueue::new();
        let pos = q.enqueue(5);
        assert!(q.try_claim_resp(pos));
        assert!(!q.try_claim_resp(pos));
        assert!(!q.resp_ready(pos));
        q.publish_resp(pos, 55);
        assert!(q.resp_ready(pos));
        assert_eq!(q.take_resp(pos), 55);
    }

    #[test]
    fn crosses_segment_boundaries() {
        let q: OpQueue<u64, ()> = OpQueue::new();
        let n = SEG_SIZE * 2 + 10;
        for i in 0..n {
            q.enqueue(i);
        }
        assert_eq!(q.op_at(SEG_SIZE - 1), SEG_SIZE - 1);
        assert_eq!(q.op_at(SEG_SIZE), SEG_SIZE);
        assert_eq!(q.op_at(n - 1), n - 1);
    }

    #[test]
    fn concurrent_enqueues_get_unique_positions_and_ops_survive() {
        const THREADS: u64 = 4;
        const PER: u64 = 2000;
        let q: Arc<OpQueue<u64, ()>> = Arc::new(OpQueue::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut pos = Vec::new();
                    for i in 0..PER {
                        pos.push((q.enqueue(t << 32 | i), t << 32 | i));
                    }
                    pos
                })
            })
            .collect();
        let mut all: Vec<(u64, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for (i, (pos, val)) in all.iter().enumerate() {
            assert_eq!(*pos, i as u64, "positions must be dense");
            assert_eq!(q.op_at(*pos), *val, "op readable at its position");
        }
    }

    #[test]
    fn concurrent_claims_yield_exactly_one_winner_per_position() {
        let q: Arc<OpQueue<u64, u64>> = Arc::new(OpQueue::new());
        for i in 0..500u64 {
            q.enqueue(i);
        }
        let winners: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut won = 0u64;
                    for pos in 0..500u64 {
                        if q.try_claim_resp(pos) {
                            q.publish_resp(pos, pos);
                            won += 1;
                        }
                    }
                    won
                })
            })
            .collect();
        let total: u64 = winners.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 500, "every position claimed exactly once");
    }
}
