//! The CX universal construction proper.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use prep_pmem::PmemRuntime;
use prep_seqds::SequentialObject;
use prep_sync::{SeqVersion, StrongTryRwLock, Waiter};

use crate::queue::OpQueue;

/// Configuration for [`CxUc`].
#[derive(Debug, Clone)]
pub struct CxConfig {
    /// Number of replicas. The original uses `2n` for wait-freedom with `n`
    /// threads; [`CxConfig::for_threads`] sets that.
    pub replicas: usize,
    /// `Some(runtime)` → CX-PUC: persist the queue entry at enqueue and
    /// flush the **whole replica** (one async flush per live cache line +
    /// fence) after every update session. `None` → volatile CX-UC.
    pub persistence: Option<Arc<PmemRuntime>>,
    /// Read-indicator stripes per replica lock, matching the reference CX's
    /// per-thread read indicators: readers of the same replica land on
    /// distinct cachelines instead of funneling through one counter.
    /// [`CxConfig::volatile`]/[`CxConfig::persistent`] set one per thread.
    pub reader_slots: usize,
    /// Serve read-only operations through the seqlock-validated optimistic
    /// path first (zero lock-stripe RMWs on success), falling back to the
    /// strong-try read lock on validation failure. On by default; disable
    /// to measure the pure strong-try baseline.
    pub optimistic_reads: bool,
}

impl CxConfig {
    /// Volatile CX-UC with the canonical 2n replicas.
    pub fn volatile(threads: usize) -> Self {
        CxConfig {
            replicas: 2 * threads.max(1),
            persistence: None,
            reader_slots: threads.max(1),
            optimistic_reads: true,
        }
    }

    /// CX-PUC with the canonical 2n replicas.
    pub fn persistent(threads: usize, rt: Arc<PmemRuntime>) -> Self {
        CxConfig {
            replicas: 2 * threads.max(1),
            persistence: Some(rt),
            reader_slots: threads.max(1),
            optimistic_reads: true,
        }
    }

    /// Overrides the replica count (builder style).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(2);
        self
    }

    /// Overrides the read-indicator stripe count (builder style).
    pub fn with_reader_slots(mut self, slots: usize) -> Self {
        self.reader_slots = slots.max(1);
        self
    }

    /// Enables or disables the optimistic read path (builder style).
    pub fn with_optimistic_reads(mut self, on: bool) -> Self {
        self.optimistic_reads = on;
        self
    }
}

struct CxReplica<T: SequentialObject> {
    /// The object plus how many queue positions it has applied. Both live
    /// under the strong try lock.
    state: StrongTryRwLock<ReplicaState<T>>,
    /// Logical NVM address range this replica occupies (sanitizer identity;
    /// allocated only when persistence is on).
    psan_region: Option<prep_pmem::psan::Region>,
    /// Seqlock version bracketing every replay session, so optimistic
    /// readers detect an overlapping writer and discard their reads.
    version: SeqVersion,
}

struct ReplicaState<T> {
    ds: T,
    applied: u64,
}

/// CX-UC / CX-PUC (see crate docs).
pub struct CxUc<T: SequentialObject> {
    queue: OpQueue<T::Op, T::Resp>,
    replicas: Box<[CxReplica<T>]>,
    latest: CachePadded<AtomicU64>,
    persistence: Option<Arc<PmemRuntime>>,
    /// Round-robin hint so threads scatter across replicas.
    next_hint: CachePadded<AtomicU64>,
    /// Whether reads try the seqlock-validated optimistic path first.
    optimistic_reads: bool,
    /// Validated optimistic fast-path reads. CX's read interface carries no
    /// registered identity, so (unlike NR's per-slot counters) this is one
    /// shared RMW per optimistic read — still strictly cheaper than the two
    /// stripe RMWs (mark + unmark) the locked path pays.
    read_fast_optimistic: CachePadded<AtomicU64>,
    /// Optimistic reads that failed seqlock validation.
    read_validation_failures: CachePadded<AtomicU64>,
    _marker: UnsafeCell<()>,
}

// SAFETY: interior state is behind locks/atomics; the UnsafeCell marker
// carries no data.
unsafe impl<T: SequentialObject> Sync for CxUc<T> {}
unsafe impl<T: SequentialObject> Send for CxUc<T> {}

impl<T: SequentialObject> CxUc<T> {
    /// Builds the construction: `config.replicas` copies of `obj`.
    pub fn new(obj: T, config: CxConfig) -> Self {
        assert!(config.replicas >= 2, "CX needs at least two replicas");
        let replicas: Box<[CxReplica<T>]> = (0..config.replicas)
            .map(|_| CxReplica {
                state: StrongTryRwLock::with_reader_slots(
                    ReplicaState {
                        ds: obj.clone_object(),
                        applied: 0,
                    },
                    config.reader_slots,
                ),
                psan_region: config
                    .persistence
                    .as_ref()
                    .map(|rt| rt.psan_region("cxReplica", 1 << 40)),
                version: SeqVersion::new(),
            })
            .collect();
        CxUc {
            queue: OpQueue::new(),
            replicas,
            latest: CachePadded::new(AtomicU64::new(0)),
            persistence: config.persistence,
            next_hint: CachePadded::new(AtomicU64::new(0)),
            optimistic_reads: config.optimistic_reads,
            read_fast_optimistic: CachePadded::new(AtomicU64::new(0)),
            read_validation_failures: CachePadded::new(AtomicU64::new(0)),
            _marker: UnsafeCell::new(()),
        }
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Executes `op` with linearizable (CX-PUC: durable) semantics.
    pub fn execute(&self, op: T::Op) -> T::Resp {
        if T::is_read_only(&op) {
            self.execute_readonly(op)
        } else {
            self.execute_update(op)
        }
    }

    fn execute_update(&self, op: T::Op) -> T::Resp {
        // 1. Linearize: append to the global queue. CX-PUC persists the
        //    entry (one line flush + fence) before proceeding.
        let pos = self.queue.enqueue(op);
        if let Some(rt) = &self.persistence {
            rt.clflushopt();
            rt.sfence();
        }

        // 2. Apply: claim some replica in write mode and replay the queue
        //    through our position. Another thread may beat us to it (its
        //    replay covers our op), in which case our response shows up
        //    without us holding any lock.
        let mut w = Waiter::new();
        // ord: round-robin scan-start hint; only RMW atomicity matters.
        let start = self.next_hint.fetch_add(1, Ordering::Relaxed) as usize;
        loop {
            if self.queue.resp_ready(pos) {
                return self.queue.take_resp(pos);
            }
            for k in 0..self.replicas.len() {
                let i = (start + k) % self.replicas.len();
                let Some(mut guard) = self.replicas[i].state.try_write() else {
                    continue;
                };
                if guard.applied > pos {
                    // Already past us: someone else computed our response.
                    drop(guard);
                    break;
                }
                // Bracket the replay with the replica's seqlock version so
                // optimistic readers discard anything they saw mid-replay.
                self.replicas[i].version.write_begin();
                self.replay_through(&mut guard, pos);
                self.replicas[i].version.write_end();
                // 3. CX-PUC: persist the *entire* replica before the ops it
                //    just absorbed may complete.
                if let Some(rt) = &self.persistence {
                    const SITE: &str = "CxUc::execute_update";
                    let bytes = guard.ds.approx_bytes();
                    let region = self.replicas[i].psan_region.expect("region set with rt");
                    // Replay mutated the replica (a zero-op replay still
                    // rewrites `applied`), so record the store before the
                    // whole-replica flush.
                    rt.trace_store(region.base, bytes.max(1), SITE);
                    rt.flush_range(region.base, bytes, SITE);
                    rt.sfence();
                }
                let applied = guard.applied;
                drop(guard);
                // 4. Publish as most-up-to-date (CAS-max by applied count).
                self.publish_latest(i as u64, applied);
                break;
            }
            if self.queue.resp_ready(pos) {
                return self.queue.take_resp(pos);
            }
            w.wait();
        }
    }

    /// Replays queue positions `[state.applied, pos]` onto the replica,
    /// publishing each position's response if unclaimed.
    fn replay_through(&self, state: &mut ReplicaState<T>, pos: u64) {
        while state.applied <= pos {
            let p = state.applied;
            let op = self.queue.op_at(p);
            let resp = state.ds.apply(&op);
            if self.queue.try_claim_resp(p) {
                self.queue.publish_resp(p, resp);
            }
            state.applied += 1;
        }
    }

    fn publish_latest(&self, replica: u64, applied: u64) {
        // latest packs (applied count, replica id) so CAS-max keeps the
        // most-advanced replica: high 48 bits = applied, low 16 = replica.
        debug_assert!(replica < (1 << 16));
        let packed = (applied << 16) | replica;
        // ord: optimistic snapshot; the CAS below revalidates it.
        let mut cur = self.latest.load(Ordering::Relaxed);
        while packed > cur {
            // ord: AcqRel on success — Release publishes the replica state
            // replayed under the write lock before readers route to it;
            // Relaxed on failure, the retry only feeds the next attempt.
            match self.latest.compare_exchange_weak(
                cur,
                packed,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    fn execute_readonly(&self, op: T::Op) -> T::Resp {
        let mut w = Waiter::new();
        // The response must reflect every operation completed before this
        // invocation; all of those are covered by `latest` at snapshot time.
        // ord: Acquire pairs with publish_latest's Release — the floor
        // covers every operation completed before this invocation.
        let floor = self.latest.load(Ordering::Acquire) >> 16;
        loop {
            // ord: Acquire — the routed-to replica's replayed state is
            // visible (with the lock's own ordering as a second fence).
            let packed = self.latest.load(Ordering::Acquire);
            let replica = (packed & 0xffff) as usize;
            if self.optimistic_reads {
                if let Some(resp) = self.read_optimistic(replica, floor, &op) {
                    return resp;
                }
            }
            if let Some(guard) = self.replicas[replica].state.try_read() {
                if guard.applied >= floor {
                    return guard.ds.apply_readonly(&op);
                }
            }
            w.wait();
        }
    }

    /// Seqlock-validated lock-free read against replica `i`: accepted only
    /// if the replica covered `floor` and no replay session overlapped.
    /// `None` falls back to the strong-try read lock (bounded: the caller
    /// tries the lock in the same loop iteration).
    fn read_optimistic(&self, i: usize, floor: u64, op: &T::Op) -> Option<T::Resp> {
        let replica = &self.replicas[i];
        let snap = replica.version.read_begin()?;
        let mut out = None;
        // SAFETY: seqlock bracket — `snap` was even and `validate` below
        // rejects the result if any replay session overlapped these
        // unsynchronized reads; a torn `applied`/`ds` is discarded
        // unobserved (see DESIGN.md "Why optimistic reads are safe").
        unsafe {
            replica.state.peek(|state| {
                if state.applied >= floor {
                    out = Some(state.ds.apply_readonly(op));
                }
            });
        }
        if !replica.version.validate(snap) {
            self.read_validation_failures
                // ord: failure-path statistic; this path falls back to a
                // real lock acquisition anyway.
                .fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if out.is_some() {
            // ord: statistics counter (see field docs for why CX pays an
            // RMW here where NR does not).
            self.read_fast_optimistic.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Validated optimistic fast-path reads (diagnostic).
    pub fn read_fast_optimistic(&self) -> u64 {
        // ord: statistics counter.
        self.read_fast_optimistic.load(Ordering::Relaxed)
    }

    /// Optimistic reads that failed seqlock validation (diagnostic).
    pub fn read_validation_failures(&self) -> u64 {
        // ord: statistics counter.
        self.read_validation_failures.load(Ordering::Relaxed)
    }

    /// Observes the most-up-to-date replica (test/diagnostic API).
    pub fn with_latest<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let mut w = Waiter::new();
        loop {
            // ord: Acquire pairs with publish_latest's Release (see
            // execute_readonly).
            let packed = self.latest.load(Ordering::Acquire);
            let replica = (packed & 0xffff) as usize;
            if let Some(guard) = self.replicas[replica].state.try_read() {
                return f(&guard.ds);
            }
            w.wait();
        }
    }

    /// Total update operations enqueued (diagnostic).
    pub fn updates_enqueued(&self) -> u64 {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_pmem::LatencyModel;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
    use prep_seqds::recorder::{Recorder, RecorderOp};

    #[test]
    fn single_thread_update_and_read() {
        let cx = CxUc::new(HashMap::new(), CxConfig::volatile(1));
        assert_eq!(cx.num_replicas(), 2);
        assert_eq!(
            cx.execute(MapOp::Insert { key: 3, value: 30 }),
            MapResp::Value(None)
        );
        assert_eq!(
            cx.execute(MapOp::Insert { key: 3, value: 33 }),
            MapResp::Value(Some(30))
        );
        assert_eq!(cx.execute(MapOp::Get { key: 3 }), MapResp::Value(Some(33)));
    }

    #[test]
    fn concurrent_updates_linearize_through_the_queue() {
        const THREADS: usize = 4;
        const PER: u64 = 300;
        let cx = Arc::new(CxUc::new(Recorder::new(), CxConfig::volatile(THREADS)));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cx = Arc::clone(&cx);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        cx.execute(RecorderOp::Record((t as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cx.updates_enqueued(), THREADS as u64 * PER);
        cx.with_latest(|r| {
            // The latest replica may lag behind the queue only by ops still
            // in flight; after joins, at least every *completed* op is
            // there. All ops completed → full history, per-thread FIFO.
            assert_eq!(r.count(), THREADS as u64 * PER);
            let mut next = [0u64; THREADS];
            for id in r.history() {
                let t = (id >> 32) as usize;
                assert_eq!(id & 0xffff_ffff, next[t]);
                next[t] += 1;
            }
        });
    }

    #[test]
    fn reads_see_completed_updates() {
        let cx = Arc::new(CxUc::new(Recorder::new(), CxConfig::volatile(2)));
        let cx2 = Arc::clone(&cx);
        let writer = std::thread::spawn(move || {
            for i in 0..200u64 {
                cx2.execute(RecorderOp::Record(i));
            }
        });
        writer.join().unwrap();
        match cx.execute(RecorderOp::Count) {
            prep_seqds::recorder::RecorderResp::Count(c) => assert_eq!(c, 200),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn persistent_mode_charges_whole_replica_flushes() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        let cx = CxUc::new(HashMap::new(), CxConfig::persistent(1, Arc::clone(&rt)));
        for k in 0..50u64 {
            cx.execute(MapOp::Insert { key: k, value: k });
        }
        let s = rt.stats().snapshot();
        // Per update: ≥1 flush for the queue entry + many for the replica.
        assert!(s.clflushopt > 100, "whole-replica flushes missing: {s:?}");
        assert!(s.sfence >= 100, "two fences per update expected: {s:?}");
    }

    #[test]
    fn optimistic_reads_served_and_counted() {
        let cx = CxUc::new(HashMap::new(), CxConfig::volatile(2));
        for k in 0..20u64 {
            cx.execute(MapOp::Insert {
                key: k,
                value: k * 10,
            });
        }
        for k in 0..20u64 {
            assert_eq!(
                cx.execute(MapOp::Get { key: k }),
                MapResp::Value(Some(k * 10))
            );
        }
        assert_eq!(
            cx.read_fast_optimistic(),
            20,
            "quiescent reads must all take the optimistic path"
        );
        assert_eq!(cx.read_validation_failures(), 0);

        // Baseline with optimism off: same answers, counter stays zero.
        let base = CxUc::new(
            HashMap::new(),
            CxConfig::volatile(2).with_optimistic_reads(false),
        );
        base.execute(MapOp::Insert { key: 1, value: 11 });
        assert_eq!(
            base.execute(MapOp::Get { key: 1 }),
            MapResp::Value(Some(11))
        );
        assert_eq!(base.read_fast_optimistic(), 0);
    }

    #[test]
    fn optimistic_reads_race_writers_consistently() {
        const THREADS: usize = 3;
        const PER: u64 = 400;
        let cx = Arc::new(CxUc::new(Recorder::new(), CxConfig::volatile(THREADS + 1)));
        let writers: Vec<_> = (0..THREADS)
            .map(|t| {
                let cx = Arc::clone(&cx);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        cx.execute(RecorderOp::Record((t as u64) << 32 | i));
                    }
                })
            })
            .collect();
        // Reader races the writers: counts must be monotone (a validated
        // optimistic read observing a torn replay would break this).
        let mut last = 0u64;
        for _ in 0..2000 {
            match cx.execute(RecorderOp::Count) {
                prep_seqds::recorder::RecorderResp::Count(c) => {
                    assert!(c >= last, "count went backwards: {c} < {last}");
                    last = c;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        for h in writers {
            h.join().unwrap();
        }
        match cx.execute(RecorderOp::Count) {
            prep_seqds::recorder::RecorderResp::Count(c) => {
                assert_eq!(c, THREADS as u64 * PER)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replica_count_override() {
        let cx = CxUc::new(Recorder::new(), CxConfig::volatile(8).with_replicas(3));
        assert_eq!(cx.num_replicas(), 3);
        cx.execute(RecorderOp::Record(1));
        cx.with_latest(|r| assert_eq!(r.count(), 1));
    }
}
