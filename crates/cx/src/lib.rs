//! CX-UC and CX-PUC: the baseline universal construction of Correia et al.
//! (EuroSys 2020), which the PREP-UC paper compares against (§2.3, §6).
//!
//! CX keeps **2n replicas** of the sequential object (n = max threads).
//! Updates are appended to a global operation queue — the linearization
//! order — and the appending thread then claims *some* replica with a strong
//! try writer lock, replays queue entries until its own operation is
//! applied, and publishes that replica as the most up-to-date via `latest`.
//! Read-only operations take the `latest` replica's lock in read mode.
//!
//! **CX-PUC** adds durability the expensive way the PREP paper describes:
//! every replica lives in persistent memory, the queue entry is persisted at
//! enqueue, and *the entire replica* is flushed after each update session
//! ("the entire replica must be persisted after applying a single update
//! operation which is very expensive", §2.3). That whole-replica flush —
//! modelled here by charging one `CLFLUSHOPT` per live cache line of the
//! structure plus a fence — is what makes CX-PUC flat in Figures 2/4/5.
//!
//! Scope note (DESIGN.md): this reimplementation is a *cost-faithful
//! performance baseline*. It reproduces CX's algorithmic costs and its
//! linearizable concurrent behaviour; it does not reimplement CX-PUC's
//! crash-recovery machinery (the reproduction's recovery experiments all
//! target PREP-UC). The original CX is wait-free through replica abundance
//! and helping; ours is blocking on replica scarcity, which only matters
//! under adversarial schedules that the benchmarks do not produce.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod queue;
mod uc;

pub use queue::OpQueue;
pub use uc::{CxConfig, CxUc};
