//! Worker-thread → (node, batch-slot) assignment.

use crate::model::{CpuId, Topology};

/// Placement of one worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPlacement {
    /// Logical CPU the worker is (logically) bound to.
    pub cpu: CpuId,
    /// NUMA node — selects the NR replica this worker uses.
    pub node: usize,
    /// Slot in the node's flat-combining batch (dense per node, 0-based).
    pub slot: usize,
}

/// An assignment of `workers` threads to the topology in paper fill order.
///
/// The assignment is what the universal constructions consume: it determines
/// the replica count, the per-node batch capacity β, and each worker's batch
/// slot. It is immutable once built — the paper binds threads to processors
/// for the lifetime of the run.
#[derive(Debug, Clone)]
pub struct ThreadAssignment {
    topology: Topology,
    placements: Vec<WorkerPlacement>,
    per_node: Vec<usize>,
}

impl ThreadAssignment {
    pub(crate) fn new(topology: Topology, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            workers <= topology.max_workers(),
            "{workers} workers exceed the {} available (one CPU is reserved \
             for the persistence thread)",
            topology.max_workers()
        );
        let mut per_node = vec![0usize; topology.nodes()];
        let mut placements = Vec::with_capacity(workers);
        for i in 0..workers {
            let cpu = topology.cpu_at(i);
            let slot = per_node[cpu.node];
            per_node[cpu.node] += 1;
            placements.push(WorkerPlacement {
                cpu,
                node: cpu.node,
                slot,
            });
        }
        ThreadAssignment {
            topology,
            placements,
            per_node,
        }
    }

    /// The topology this assignment was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.placements.len()
    }

    /// Full placement of worker `i`.
    pub fn placement(&self, worker: usize) -> WorkerPlacement {
        self.placements[worker]
    }

    /// NUMA node (replica index) of worker `i`.
    pub fn node_of(&self, worker: usize) -> usize {
        self.placements[worker].node
    }

    /// Batch slot of worker `i` within its node.
    pub fn slot_of(&self, worker: usize) -> usize {
        self.placements[worker].slot
    }

    /// Number of workers assigned to `node`.
    pub fn workers_on_node(&self, node: usize) -> usize {
        self.per_node[node]
    }

    /// Number of nodes that received at least one worker.
    ///
    /// The universal constructions only instantiate replicas for populated
    /// nodes — a 4-thread run on the paper machine uses a single replica.
    pub fn populated_nodes(&self) -> usize {
        self.per_node.iter().filter(|&&c| c > 0).count()
    }

    /// β: the flat-combining batch capacity, defined by the paper as "the
    /// number of threads per NUMA node". We size batches to the most-loaded
    /// node so every worker always has a slot.
    pub fn beta(&self) -> usize {
        *self.per_node.iter().max().expect("at least one node")
    }

    /// Iterates over all placements in worker order.
    pub fn iter(&self) -> impl Iterator<Item = &WorkerPlacement> {
        self.placements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_dense_per_node() {
        let t = Topology::paper_machine();
        let a = t.assign_workers(60);
        // Node 0 gets workers 0..48 with slots 0..48; node 1 gets 48..60
        // with slots 0..12.
        for w in 0..48 {
            assert_eq!(a.node_of(w), 0);
            assert_eq!(a.slot_of(w), w);
        }
        for w in 48..60 {
            assert_eq!(a.node_of(w), 1);
            assert_eq!(a.slot_of(w), w - 48);
        }
        assert_eq!(a.workers_on_node(0), 48);
        assert_eq!(a.workers_on_node(1), 12);
        assert_eq!(a.beta(), 48);
        assert_eq!(a.populated_nodes(), 2);
    }

    #[test]
    fn single_node_run_uses_one_replica() {
        let t = Topology::paper_machine();
        let a = t.assign_workers(24);
        assert_eq!(a.populated_nodes(), 1);
        assert_eq!(a.beta(), 24);
    }

    #[test]
    fn max_workers_accepted_and_reaches_last_node() {
        let t = Topology::paper_machine();
        let a = t.assign_workers(t.max_workers());
        assert_eq!(a.workers(), 95);
        assert_eq!(a.workers_on_node(0), 48);
        assert_eq!(a.workers_on_node(1), 47);
        assert_eq!(a.beta(), 48);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_workers_rejected() {
        let t = Topology::small(); // 4 CPUs, max 3 workers
        t.assign_workers(4);
    }

    #[test]
    fn iter_matches_indexed_access() {
        let t = Topology::new(2, 3, 1);
        let a = t.assign_workers(5);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(*p, a.placement(i));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any topology and worker count, β × populated nodes bounds the
        /// worker count, per-node counts sum to the total, and slots are a
        /// permutation of 0..count on each node.
        #[test]
        fn assignment_invariants(
            nodes in 1usize..5,
            cores in 1usize..9,
            smt in 1usize..3,
            frac in 0.01f64..1.0,
        ) {
            let t = Topology::new(nodes, cores, smt);
            let max = t.max_workers();
            prop_assume!(max >= 1);
            let workers = ((max as f64 * frac).ceil() as usize).clamp(1, max);
            let a = t.assign_workers(workers);

            let total: usize = (0..nodes).map(|n| a.workers_on_node(n)).sum();
            prop_assert_eq!(total, workers);
            prop_assert!(a.beta() * a.populated_nodes() >= workers);

            for node in 0..nodes {
                let mut slots: Vec<usize> = (0..workers)
                    .filter(|&w| a.node_of(w) == node)
                    .map(|w| a.slot_of(w))
                    .collect();
                slots.sort_unstable();
                let expect: Vec<usize> = (0..a.workers_on_node(node)).collect();
                prop_assert_eq!(slots, expect);
            }
        }

        /// The fill order never places a worker on node k+1 while node k has
        /// an unused CPU.
        #[test]
        fn fill_order_is_node_monotone(workers in 1usize..95) {
            let t = Topology::paper_machine();
            let a = t.assign_workers(workers);
            let mut max_node_seen = 0usize;
            for w in 0..workers {
                let n = a.node_of(w);
                prop_assert!(n >= max_node_seen || a.workers_on_node(n) == t.cpus_per_node());
                max_node_seen = max_node_seen.max(n);
            }
        }
    }
}
