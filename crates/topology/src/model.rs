//! The machine model: nodes × cores × SMT, and the paper's CPU fill order.

use crate::assignment::ThreadAssignment;

/// Identifies one logical CPU in the modelled machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuId {
    /// NUMA node index.
    pub node: usize,
    /// Physical core index within the node.
    pub core: usize,
    /// SMT sibling index on that core (0 = primary hyperthread).
    pub smt: usize,
}

/// A NUMA machine model: `nodes` sockets, each with `cores_per_node`
/// physical cores carrying `smt_per_core` hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    cores_per_node: usize,
    smt_per_core: usize,
}

impl Topology {
    /// Builds a topology model.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nodes: usize, cores_per_node: usize, smt_per_core: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one NUMA node");
        assert!(
            cores_per_node > 0,
            "topology needs at least one core per node"
        );
        assert!(
            smt_per_core > 0,
            "topology needs at least one SMT thread per core"
        );
        Topology {
            nodes,
            cores_per_node,
            smt_per_core,
        }
    }

    /// The paper's evaluation machine: 2 × Intel Xeon Gold 5220R
    /// (2 NUMA nodes, 24 cores each, 2-way SMT → 96 logical CPUs).
    pub fn paper_machine() -> Self {
        Topology::new(2, 24, 2)
    }

    /// A small topology convenient for tests: 2 nodes × 2 cores × 1 SMT.
    pub fn small() -> Self {
        Topology::new(2, 2, 1)
    }

    /// Number of NUMA nodes (= number of NR replicas).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Physical cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// SMT threads per core.
    pub fn smt_per_core(&self) -> usize {
        self.smt_per_core
    }

    /// Logical CPUs per node.
    pub fn cpus_per_node(&self) -> usize {
        self.cores_per_node * self.smt_per_core
    }

    /// Total logical CPUs in the machine.
    pub fn logical_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node()
    }

    /// Maximum worker-thread count: one logical CPU is reserved for the
    /// persistence thread (paper §6 uses "at most 95 of the 96 available
    /// hardware threads as worker threads").
    pub fn max_workers(&self) -> usize {
        self.logical_cpus() - 1
    }

    /// The CPU reserved for the persistence thread: the last logical CPU in
    /// the fill order, so it is the last to be claimed by workers.
    pub fn persistence_cpu(&self) -> CpuId {
        self.cpu_at(self.logical_cpus() - 1)
    }

    /// Maps a position in the paper's fill order to a CPU.
    ///
    /// Fill order (§6): all primary hyperthreads of node 0's cores, then node
    /// 0's secondary hyperthreads, …, then the same for node 1, and so on.
    ///
    /// # Panics
    /// Panics if `index >= logical_cpus()`.
    pub fn cpu_at(&self, index: usize) -> CpuId {
        assert!(
            index < self.logical_cpus(),
            "CPU index {index} out of range for {} logical CPUs",
            self.logical_cpus()
        );
        let per_node = self.cpus_per_node();
        let node = index / per_node;
        let within = index % per_node;
        let smt = within / self.cores_per_node;
        let core = within % self.cores_per_node;
        CpuId { node, core, smt }
    }

    /// NUMA node of the `index`-th CPU in fill order.
    pub fn node_of_cpu_index(&self, index: usize) -> usize {
        self.cpu_at(index).node
    }

    /// Assigns `workers` worker threads to CPUs in the paper's fill order.
    ///
    /// # Panics
    /// Panics if `workers` exceeds [`Topology::max_workers`].
    pub fn assign_workers(&self, workers: usize) -> ThreadAssignment {
        ThreadAssignment::new(*self, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_dimensions() {
        let t = Topology::paper_machine();
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.cpus_per_node(), 48);
        assert_eq!(t.logical_cpus(), 96);
        assert_eq!(t.max_workers(), 95);
    }

    #[test]
    fn fill_order_matches_paper_ranges() {
        let t = Topology::paper_machine();
        // "experiments for up to 24 threads utilize the available processors
        // on a single node" — primary hyperthreads of node 0.
        for i in 0..24 {
            let cpu = t.cpu_at(i);
            assert_eq!((cpu.node, cpu.smt), (0, 0));
            assert_eq!(cpu.core, i);
        }
        // "24 to 48 threads utilize all available processors and
        // hyper-threads on a single node".
        for i in 24..48 {
            let cpu = t.cpu_at(i);
            assert_eq!((cpu.node, cpu.smt), (0, 1));
        }
        // "49 to 72 and 72 to 96 do the same on the second node".
        for i in 48..72 {
            let cpu = t.cpu_at(i);
            assert_eq!((cpu.node, cpu.smt), (1, 0));
        }
        for i in 72..96 {
            let cpu = t.cpu_at(i);
            assert_eq!((cpu.node, cpu.smt), (1, 1));
        }
    }

    #[test]
    fn persistence_cpu_is_last_in_fill_order() {
        let t = Topology::paper_machine();
        let p = t.persistence_cpu();
        assert_eq!(
            p,
            CpuId {
                node: 1,
                core: 23,
                smt: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cpu_index_out_of_range_panics() {
        Topology::small().cpu_at(4);
    }

    #[test]
    #[should_panic(expected = "at least one NUMA node")]
    fn zero_nodes_rejected() {
        Topology::new(0, 1, 1);
    }

    #[test]
    fn every_cpu_enumerated_exactly_once() {
        let t = Topology::new(3, 4, 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..t.logical_cpus() {
            assert!(seen.insert(t.cpu_at(i)), "duplicate CPU in fill order");
        }
        assert_eq!(seen.len(), 24);
    }
}
