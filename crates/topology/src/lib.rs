//! NUMA topology model and thread placement for the PREP-UC reproduction.
//!
//! NR-UC and PREP-UC are NUMA-aware: there is one replica per NUMA node, and
//! flat-combining batches are sized by the number of worker threads on a node
//! (the paper's β). The original evaluation binds threads to physical
//! processors on a 2-socket, 24-core/48-thread Xeon machine, filling node 0's
//! cores first, then node 0's hyperthreads, then node 1 (paper §6).
//!
//! Real hardware pinning is neither possible nor meaningful on the
//! reproduction machine (a single-core VM — see DESIGN.md "Hardware
//! substitutions"), so this crate models the placement *logically*: given a
//! topology and a worker count, it answers the questions the algorithms
//! actually depend on:
//!
//! * which NUMA node (→ which replica) does worker `i` belong to?
//! * what is worker `i`'s slot in its node's flat-combining batch?
//! * what is β, the per-node batch capacity?
//! * which CPU is reserved for the persistence thread?
//!
//! ```
//! use prep_topology::Topology;
//! let topo = Topology::paper_machine(); // 2 nodes × 24 cores × 2 SMT
//! assert_eq!(topo.logical_cpus(), 96);
//! let asg = topo.assign_workers(50);
//! assert_eq!(asg.node_of(0), 0);   // first 48 workers fill node 0
//! assert_eq!(asg.node_of(49), 1);  // then node 1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assignment;
mod model;

pub use assignment::{ThreadAssignment, WorkerPlacement};
pub use model::{CpuId, Topology};
