//! Crash simulation and the recovery procedures (§5.1, §5.2).

use prep_pmem::{CrashToken, ReplicaSnapshot, TornImage};
use prep_seqds::SequentialObject;
use prep_topology::ThreadAssignment;

use crate::config::{DurabilityLevel, PrepConfig};
use crate::puc::PrepUc;

/// Everything that was durable at the instant of a (simulated) power
/// failure — a consistent cut of the NVM image.
pub struct CrashImage<T: SequentialObject> {
    /// The persisted `p_activePReplica` selector: which replica was being
    /// updated when the crash hit. The *other* one is the stable replica
    /// recovery starts from.
    pub active: u64,
    /// The two persistent replicas' NVM images. The stable one is always
    /// consistent ([`Ok`]); the active one may be [`TornImage`].
    pub replicas: [Result<ReplicaSnapshot<T>, TornImage>; 2],
    /// Persisted `completedTail` (meaningful in durable mode; 0 otherwise).
    pub completed_tail: u64,
    /// Persisted log entries, `(monotonic index, operation)`, ascending
    /// (durable mode; empty otherwise).
    pub log_entries: Vec<(u64, T::Op)>,
}

impl<T: SequentialObject> CrashImage<T> {
    /// Index of the stable persistent replica (the one recovery reads).
    pub fn stable_index(&self) -> usize {
        (1 - self.active) as usize
    }

    /// The stable replica's snapshot.
    ///
    /// # Panics
    /// Panics if the stable image is torn — which PREP-UC's protocol makes
    /// impossible (only the active replica is ever mutated); a panic here
    /// means the two-replica invariant was violated.
    pub fn stable_snapshot(&self) -> &ReplicaSnapshot<T> {
        self.replicas[self.stable_index()]
            .as_ref()
            .expect("stable persistent replica image is torn: two-replica invariant violated")
    }
}

impl<T: SequentialObject> PrepUc<T> {
    /// Simulates a full-system power failure: captures a consistent cut of
    /// everything persisted, without disturbing the running instance.
    ///
    /// The returned [`CrashImage`] is what NVM would contain; pass it to
    /// [`PrepUc::recover`] to rebuild the object. (Tests typically drop the
    /// original instance to complete the "crash".)
    ///
    /// # Panics
    /// Panics unless the runtime was created with crash simulation enabled
    /// (`PmemRuntime::for_crash_tests()`).
    pub fn simulate_crash(&self) -> (CrashToken, CrashImage<T>) {
        let (token, (image, ())) = self.simulate_crash_with(|| ());
        (token, image)
    }

    /// Like [`PrepUc::simulate_crash`], but also runs `extra` inside the
    /// same consistent cut — test instrumentation for observing volatile
    /// state (e.g. per-worker completion counters) coherently with the
    /// captured NVM image.
    pub fn simulate_crash_with<R>(
        &self,
        extra: impl FnOnce() -> R,
    ) -> (CrashToken, (CrashImage<T>, R)) {
        self.runtime()
            .capture_cut(|| (self.crash_image_in_cut(), extra()))
    }

    /// Reads this instance's crash image **inside an already-frozen
    /// consistent cut** — the entry point recovery orchestrators use to
    /// capture several constructions sharing one [`prep_pmem::PmemRuntime`]
    /// in a *single* power failure (e.g. `prep-shard`'s cross-shard crash):
    /// the orchestrator calls [`prep_pmem::PmemRuntime::capture_cut`] once
    /// and invokes this on every instance from within the capture closure.
    ///
    /// Callers that want a single-instance crash should use
    /// [`PrepUc::simulate_crash`] instead, which takes the cut itself.
    /// Calling this *outside* a frozen cut yields an image that is not a
    /// consistent cut of the persist order.
    pub fn crash_image_in_cut(&self) -> CrashImage<T> {
        let state = self.hook_state();
        let image = CrashImage {
            active: state.p_active_cell.read_image(),
            replicas: [
                self.replica_image(0).read_image(),
                self.replica_image(1).read_image(),
            ],
            completed_tail: state.ct_cell.read_image(),
            log_entries: state.log_image.persisted_range(0, u64::MAX),
        };
        // Tell the sanitizer what recovery relies on from this cut: the
        // selector, the stable replica it names, and (durable mode) the
        // completedTail cell plus the log entries recovery will replay
        // onto the stable snapshot. Rule 3 then verifies all of it was
        // durable at the cut.
        let rt = self.runtime();
        if rt.psan_enabled() {
            const SITE: &str = "PrepUc::crash_image_in_cut";
            let cell = std::mem::size_of::<u64>() as u64;
            rt.trace_recovery_read(state.psan.p_active_addr, cell, SITE);
            let stable = image.stable_index();
            if let Ok(snap) = &image.replicas[stable] {
                let region = state.psan.replicas[stable];
                rt.trace_recovery_read(region.base, region.len, SITE);
                if self.config().durability == DurabilityLevel::Durable {
                    rt.trace_recovery_read(state.psan.ct_addr, cell, SITE);
                    let eb = std::mem::size_of::<T::Op>() as u64 + 1;
                    let from = snap.local_tail * eb;
                    let to = image.completed_tail * eb;
                    if to > from {
                        rt.trace_recovery_read(state.psan.log_base + from, to - from, SITE);
                    }
                }
            }
        }
        image
    }

    /// The recovery procedure (§5.1 buffered, §5.2 durable): rebuilds a
    /// fresh PREP-UC from a crash image.
    ///
    /// 1. Identify the stable persistent replica via `p_activePReplica`.
    /// 2. Start from its snapshot.
    /// 3. **Durable only:** replay the persisted, non-empty log entries in
    ///    `[stable.localTail, completedTail)` onto it.
    /// 4. Instantiate every replica (N volatile + 2 persistent) as copies of
    ///    the result; reset the log, all tails, and the flush boundary; the
    ///    new instance's NVM images start from the recovered state.
    pub fn recover(
        _crash: CrashToken,
        image: CrashImage<T>,
        assignment: ThreadAssignment,
        config: PrepConfig,
    ) -> Self {
        let snap = image.stable_snapshot();
        let mut obj = snap.state.clone_object();
        if config.durability == DurabilityLevel::Durable {
            let from = snap.local_tail;
            let to = image.completed_tail;
            for (idx, op) in &image.log_entries {
                if *idx >= from && *idx < to {
                    obj.apply(op);
                }
            }
        }
        PrepUc::new(obj, assignment, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_pmem::PmemRuntime;
    use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp, RecorderResp};
    use prep_topology::Topology;

    fn cfg(level: DurabilityLevel, eps: u64) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(eps)
            .with_runtime(PmemRuntime::for_crash_tests())
    }

    /// Runs `n` updates single-threaded, crashes, recovers, and returns
    /// (completed-before-crash history, recovered history).
    fn run_crash_recover(level: DurabilityLevel, eps: u64, n: u64) -> (Vec<u64>, Vec<u64>) {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(Recorder::new(), asg.clone(), cfg(level, eps));
        let t = prep.register(0);
        let mut completed = Vec::new();
        for i in 0..n {
            prep.execute(&t, RecorderOp::Record(i));
            completed.push(i);
        }
        let (token, image) = prep.simulate_crash();
        drop(prep); // the "power failure"
        let recovered = PrepUc::recover(token, image, asg, cfg(level, eps));
        let t = recovered.register(0);
        let count = match recovered.execute(&t, RecorderOp::Count) {
            RecorderResp::Count(c) => c,
            other => panic!("unexpected {other:?}"),
        };
        let hist = recovered.with_replica(0, |r| r.history().to_vec());
        assert_eq!(hist.len() as u64, count);
        (completed, hist)
    }

    #[test]
    fn durable_recovers_every_completed_operation() {
        let (completed, recovered) = run_crash_recover(DurabilityLevel::Durable, 16, 100);
        assert_eq!(recovered, completed, "durable linearizability: no loss");
    }

    #[test]
    #[allow(clippy::int_plus_one)] // paper formula ε + β − 1
    fn buffered_recovers_a_prefix_within_the_loss_bound() {
        let eps = 16;
        let (completed, recovered) = run_crash_recover(DurabilityLevel::Buffered, eps, 100);
        let len = assert_prefix(&recovered, &completed);
        let beta = 1; // single worker
        let lost = completed.len() - len;
        assert!(
            lost as u64 <= eps + beta - 1,
            "lost {lost} > bound {}",
            eps + beta - 1
        );
    }

    #[test]
    fn crash_before_any_persist_recovers_empty_buffered() {
        // Fewer updates than ε: nothing persisted yet; buffered recovery
        // yields the initial (empty) object — a legal prefix.
        let (completed, recovered) = run_crash_recover(DurabilityLevel::Buffered, 64, 10);
        assert_eq!(completed.len(), 10);
        assert!(recovered.len() <= 10);
        assert_prefix(&recovered, &completed);
    }

    #[test]
    fn crash_before_any_persist_recovers_all_durable() {
        // Even with no WBINVD yet, the durable log replays everything.
        let (completed, recovered) = run_crash_recover(DurabilityLevel::Durable, 64, 10);
        assert_eq!(recovered, completed);
    }

    #[test]
    fn repeated_crashes_accumulate_bounded_loss() {
        // c crash events lose at most c(ε + β − 1) completed ops (§5.1).
        let eps = 8u64;
        let asg = Topology::small().assign_workers(1);
        let mut prep = PrepUc::new(
            Recorder::new(),
            asg.clone(),
            cfg(DurabilityLevel::Buffered, eps),
        );
        let mut completed: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        const CRASHES: u64 = 4;
        for _ in 0..CRASHES {
            let t = prep.register(0);
            for _ in 0..30 {
                prep.execute(&t, RecorderOp::Record(next_id));
                completed.push(next_id);
                next_id += 1;
            }
            let (token, image) = prep.simulate_crash();
            drop(prep);
            prep = PrepUc::recover(
                token,
                image,
                asg.clone(),
                cfg(DurabilityLevel::Buffered, eps),
            );
            // The recovered history must be missing only a suffix of each
            // inter-crash epoch; globally, ids are recorded in order with
            // gaps only at crash points. Verify it is a subsequence of
            // `completed` and bounded loss overall.
            let hist = prep.with_replica(0, |r| r.history().to_vec());
            let lost_total = completed.len() - hist.len();
            assert!(
                (lost_total as u64) <= CRASHES * (eps + 1 - 1),
                "total loss {lost_total} exceeds c(ε+β−1)"
            );
        }
    }

    #[test]
    fn stable_replica_is_never_torn_across_random_crash_points() {
        // Crash at many different points; the stable image must always be
        // readable (two-replica invariant), even while the active one is
        // being updated.
        let asg = Topology::small().assign_workers(1);
        for n in [1u64, 5, 9, 17, 33, 64, 100] {
            let prep = PrepUc::new(
                Recorder::new(),
                asg.clone(),
                cfg(DurabilityLevel::Buffered, 8),
            );
            let t = prep.register(0);
            for i in 0..n {
                prep.execute(&t, RecorderOp::Record(i));
            }
            let (_tok, image) = prep.simulate_crash();
            let stable = image.stable_snapshot();
            assert!(stable.local_tail <= n);
        }
    }
}
