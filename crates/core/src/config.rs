//! PREP-UC configuration.

use std::sync::Arc;

use prep_pmem::{LatencyModel, PmemRuntime};

/// Which correctness condition the construction guarantees (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityLevel {
    /// Buffered durable linearizability (PREP-Buffered): after a crash the
    /// object reflects a *prefix* of the completed operations, missing at
    /// most `ε + β − 1` of them. The log and `completedTail` stay volatile.
    Buffered,
    /// Durable linearizability (PREP-Durable): every completed operation
    /// survives a crash. Additionally persists log entries (flush + fence
    /// per batch) and the `completedTail` index.
    Durable,
}

/// How the persistence thread writes the active replica back to NVM at a
/// flush boundary (§6, "Stack": "In practice if the data structure is very
/// small [one] could flush the entire address space of a replica rather than
/// using WBINVD").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStrategy {
    /// `WBINVD` + `SFENCE`: cost independent of the structure (paper
    /// default) — wins for large structures.
    Wbinvd,
    /// Flush the replica's address range line by line + `SFENCE`: cost
    /// proportional to the structure — wins for tiny structures. The
    /// ablation benches measure the crossover.
    RangeFlush,
    /// Incremental checkpointing: one `CLFLUSHOPT` per **distinct dirty
    /// line** accrued since the last checkpoint
    /// ([`prep_seqds::SequentialObject::dirty_bytes_since_checkpoint`]) +
    /// one `SFENCE` — cost proportional to the checkpoint interval's write
    /// set, not the structure. Falls back to `RangeFlush` behavior for
    /// objects without precise dirty tracking. The crash-sim image is
    /// updated by replaying the interval's ops onto the stored snapshot
    /// (`ReplicaImage::apply_delta`) instead of deep-cloning the replica.
    DirtyLines,
}

/// Deliberately seeded persistence-ordering bugs, used to validate that
/// the `prep-psan` sanitizer catches dropped fences in the real persist
/// paths (regression tests only — never set in production configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsanFault {
    /// Durable mode: skip the `SFENCE` after the batch's payload flushes,
    /// so emptyBits publish entries whose payloads are not yet durable.
    SkipLogPayloadFence,
    /// Skip the `SFENCE` after a checkpoint's replica flushes, so the
    /// `p_activePReplica` swap publishes an unfenced replica.
    SkipCheckpointFence,
}

/// Construction parameters for [`crate::PrepUc`].
#[derive(Debug, Clone)]
pub struct PrepConfig {
    /// Durability level.
    pub durability: DurabilityLevel,
    /// Flush-boundary step ε: the active persistent replica is written back
    /// (WBINVD) every ε log entries. Smaller ε → tighter loss bound and more
    /// frequent (expensive) write-backs; the paper sweeps this in Figure 3.
    pub epsilon: u64,
    /// Shared-log capacity in entries (paper §6 uses 1M).
    pub log_size: u64,
    /// The persistence cost model / crash-store runtime. Defaults to a
    /// cost-only Optane-calibrated runtime; tests inject
    /// `PmemRuntime::for_crash_tests()`.
    pub runtime: Arc<PmemRuntime>,
    /// Route the persistence thread's sequential-object calls through the
    /// thread-local allocator swap (`prep_pmem::alloc::with_persistent`),
    /// §5.1. On by default; a no-op unless the binary registers
    /// `SwappableAllocator` as its global allocator.
    pub allocator_swap: bool,
    /// How replica write-backs are performed (ablation; paper default
    /// WBINVD).
    pub flush_strategy: FlushStrategy,
    /// Durable mode ablation: fence after **every** log entry instead of
    /// once per batch. The paper's single-fence-per-batch scheme (§4.1) is
    /// the default; per-entry fencing quantifies what batching saves.
    pub fence_per_entry: bool,
    /// Liveness mode (§4.2): throughput-first (the paper's default) or
    /// starvation-free (fair reservation lock + phase-fair replica locks).
    pub fairness: prep_nr::FairnessMode,
    /// Deliberately seeded ordering bug for sanitizer-validation tests
    /// (`None` in every real configuration).
    pub psan_fault: Option<PsanFault>,
}

impl PrepConfig {
    /// Defaults matching the paper's evaluation: log of 2²⁰ entries,
    /// ε = 10000 (1% of the log), Optane cost model.
    pub fn new(durability: DurabilityLevel) -> Self {
        PrepConfig {
            durability,
            epsilon: 10_000,
            log_size: prep_nr::DEFAULT_LOG_SIZE,
            runtime: PmemRuntime::for_benchmarks(LatencyModel::optane()),
            allocator_swap: true,
            flush_strategy: FlushStrategy::Wbinvd,
            fence_per_entry: false,
            fairness: prep_nr::FairnessMode::Throughput,
            psan_fault: None,
        }
    }

    /// Seeds a deliberate ordering bug for sanitizer-validation tests
    /// (builder style).
    pub fn with_psan_fault(mut self, fault: PsanFault) -> Self {
        self.psan_fault = Some(fault);
        self
    }

    /// Selects the liveness mode (builder style).
    pub fn with_fairness(mut self, fairness: prep_nr::FairnessMode) -> Self {
        self.fairness = fairness;
        self
    }

    /// Sets the replica write-back strategy (builder style).
    pub fn with_flush_strategy(mut self, strategy: FlushStrategy) -> Self {
        self.flush_strategy = strategy;
        self
    }

    /// Enables per-entry fencing in durable mode (builder style; ablation).
    pub fn with_fence_per_entry(mut self) -> Self {
        self.fence_per_entry = true;
        self
    }

    /// Sets ε (builder style).
    pub fn with_epsilon(mut self, epsilon: u64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the log capacity (builder style).
    pub fn with_log_size(mut self, log_size: u64) -> Self {
        self.log_size = log_size;
        self
    }

    /// Sets the persistence runtime (builder style).
    pub fn with_runtime(mut self, runtime: Arc<PmemRuntime>) -> Self {
        self.runtime = runtime;
        self
    }

    /// Disables the allocator swap (builder style).
    pub fn without_allocator_swap(mut self) -> Self {
        self.allocator_swap = false;
        self
    }

    /// Validates the configuration against `beta` (threads per node).
    ///
    /// # Panics
    /// Panics if ε violates the paper's constraint
    /// `ε ≤ LOG_SIZE − β − 1` (§5.1) or is zero.
    #[allow(clippy::int_plus_one)] // keep the paper's ε ≤ LOG_SIZE − β − 1 verbatim
    pub fn validate(&self, beta: u64) {
        assert!(self.epsilon > 0, "epsilon must be positive");
        assert!(
            self.epsilon <= self.log_size - beta - 1,
            "epsilon {} violates the constraint epsilon <= LOG_SIZE - beta - 1 \
             ({} - {} - 1 = {})",
            self.epsilon,
            self.log_size,
            beta,
            self.log_size - beta - 1
        );
    }

    /// The worst-case number of **completed** update operations a single
    /// crash can lose under this configuration (§5.1): `ε + β − 1` for
    /// buffered, `0` for durable.
    pub fn loss_bound(&self, beta: u64) -> u64 {
        match self.durability {
            DurabilityLevel::Buffered => self.epsilon + beta - 1,
            DurabilityLevel::Durable => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_evaluation() {
        let c = PrepConfig::new(DurabilityLevel::Buffered);
        assert_eq!(c.log_size, 1 << 20);
        assert_eq!(c.epsilon, 10_000);
        assert!(c.allocator_swap);
    }

    #[test]
    fn builder_methods_apply() {
        let c = PrepConfig::new(DurabilityLevel::Durable)
            .with_epsilon(5)
            .with_log_size(64)
            .without_allocator_swap();
        assert_eq!(c.epsilon, 5);
        assert_eq!(c.log_size, 64);
        assert!(!c.allocator_swap);
        assert_eq!(c.durability, DurabilityLevel::Durable);
    }

    #[test]
    fn loss_bounds_per_level() {
        let beta = 8;
        assert_eq!(
            PrepConfig::new(DurabilityLevel::Buffered)
                .with_epsilon(100)
                .loss_bound(beta),
            107
        );
        assert_eq!(
            PrepConfig::new(DurabilityLevel::Durable).loss_bound(beta),
            0
        );
    }

    #[test]
    #[should_panic(expected = "violates the constraint")]
    fn epsilon_constraint_enforced() {
        PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(64)
            .with_epsilon(60)
            .validate(8); // 60 > 64 - 8 - 1 = 55
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_rejected() {
        PrepConfig::new(DurabilityLevel::Buffered)
            .with_epsilon(0)
            .validate(1);
    }
}
