//! The persistence thread (Algorithm 2: `UpdatePersistentReplicas`).
//!
//! A single dedicated thread owns both persistence-only replicas. In each
//! cycle it replays newly completed log entries onto the **active** replica
//! (through the thread-local allocator swap, so the sequential object's
//! allocations land in the persistent arena, §5.1). When the flush boundary
//! is reached it writes the active replica back with WBINVD + SFENCE,
//! advances the boundary by ε, and swaps the active/stable roles by
//! persisting `p_activePReplica`.

use std::sync::Arc;

use prep_pmem::ReplicaImage;
use prep_seqds::SequentialObject;
use prep_sync::Waiter;

use prep_pmem::psan::PublishTag;

use crate::config::{DurabilityLevel, FlushStrategy, PsanFault};
use crate::hooks::HookState;
use crate::puc::NrInner;

/// A persistence-only replica (the paper's `PReplica`): just the object and
/// its localTail — no locks, no batch, no response array (§5.1: "the
/// persistent replicas are only accessed by the persistence thread").
pub(crate) struct PReplica<T: SequentialObject> {
    pub(crate) ds: T,
    pub(crate) local_tail: u64,
    /// Ops applied since this replica's last checkpoint, buffered for the
    /// incremental crash-sim image update (`DirtyLines` only, and only when
    /// crash simulation is on). Buffered at apply time because log slots
    /// below the persistent tails may be recycled (logMin, §5.1) before the
    /// checkpoint runs — the log cannot be re-read for the delta.
    pub(crate) pending: Vec<T::Op>,
}

/// Everything the persistence thread needs, moved into it at spawn.
pub(crate) struct PersistenceTask<T: SequentialObject> {
    pub(crate) nr: Arc<NrInner<T>>,
    pub(crate) state: Arc<HookState<T::Op>>,
    pub(crate) images: Arc<[ReplicaImage<T>; 2]>,
    pub(crate) replicas: [PReplica<T>; 2],
    pub(crate) epsilon: u64,
    pub(crate) allocator_swap: bool,
    pub(crate) flush_strategy: FlushStrategy,
}

impl<T: SequentialObject> PersistenceTask<T> {
    /// The thread body: loop until `state.stop`.
    pub(crate) fn run(mut self) {
        use std::sync::atomic::Ordering;

        let rt = Arc::clone(&self.state.rt);
        let op_bytes = std::mem::size_of::<T::Op>() as u64;
        let mut w = Waiter::new();
        let dirty_lines = self.flush_strategy == FlushStrategy::DirtyLines;
        // Precise dirty tracking is enabled only on the persistence
        // replicas (the volatile NR replicas keep the zero-cost fallback),
        // and only when the flush strategy will consume it.
        if dirty_lines {
            for rep in &mut self.replicas {
                rep.ds.clear_dirty();
            }
        }
        let buffer_delta = dirty_lines && rt.crash_sim_enabled();

        loop {
            // ord: Acquire pairs with shutdown's stop Release so the final
            // state we leave behind covers everything shut-down code wrote.
            if self.state.stop.load(Ordering::Acquire) {
                return;
            }
            // ord: Acquire pairs with our own swap Release (and recovery's
            // initial store) — mostly self-reads, but helpers read it too.
            let active = self.state.p_active.load(Ordering::Acquire) as usize;
            let tail = self.nr.completed_tail();
            let rep = &mut self.replicas[active];

            let mut progressed = false;
            if tail > rep.local_tail {
                // First mutation after a snapshot leaves the active
                // replica's NVM image torn until the next WBINVD (§4.1's
                // background-flush hazard).
                self.images[active].mark_torn(&rt);
                let ds = &mut rep.ds;
                let pending = &mut rep.pending;
                let swap = self.allocator_swap;
                let region_base = self.state.psan.replicas[active].base;
                self.nr.log().for_each_op(rep.local_tail, tail, |_, op| {
                    // Stores to the NVM-resident replica are slower than
                    // DRAM stores; charge them.
                    rt.nvm_write(region_base, op_bytes);
                    if buffer_delta {
                        pending.push(op.clone());
                    }
                    if swap {
                        prep_pmem::alloc::with_persistent(|| {
                            ds.apply(op);
                        });
                    } else {
                        ds.apply(op);
                    }
                });
                rep.local_tail = tail;
                // ord: Release publishes the replica state just applied to
                // persistent_tails()'s Acquire readers.
                self.state.p_tails[active].store(tail, Ordering::Release);
                progressed = true;
            }

            // Flush trigger (Algorithm 2): checked even when no new entries
            // arrived this cycle — a helping combiner may have *lowered* the
            // boundary below our already-applied tail, and the gate then
            // depends on us persisting and swapping.
            //
            // Second trigger (deadlock backstop): if the reservation gate is
            // closed (boundary ≤ logTail) and we have applied everything
            // completed so far, completedTail may be unable to reach the
            // boundary at all (blocked combiners hold unfinished entries).
            // Persist-and-swap now: each swap raises the boundary by ≥ ε,
            // so the gate provably reopens, and persisting early only
            // tightens the ε + β − 1 loss bound.
            // ord: Acquire pairs with help_persistent_straggler's Release —
            // a lowered boundary arrives with the state that motivated it.
            let boundary = self.state.flush_boundary.load(Ordering::Acquire);
            let gate_closed = boundary <= self.nr.log().log_tail();
            // The backstop only fires when the resulting boundary
            // (persistedTail + ε) would actually rise — otherwise a cycle
            // with an in-flight operation would re-persist the same state
            // every loop iteration.
            let backstop =
                gate_closed && rep.local_tail == tail && rep.local_tail + self.epsilon > boundary;
            if boundary <= rep.local_tail || backstop {
                // Write the active replica back to NVM, making it durable
                // and consistent: WBINVD (paper default), a per-line range
                // flush (the §6 alternative for tiny structures), or — the
                // incremental path — one CLFLUSHOPT per distinct line
                // dirtied since this replica's last checkpoint.
                const SITE: &str = "PersistenceTask::checkpoint";
                let region = self.state.psan.replicas[active];
                let full_bytes = rep.ds.approx_bytes();
                let flushed_bytes = match self.flush_strategy {
                    FlushStrategy::Wbinvd => {
                        rt.trace_store(region.base, full_bytes, SITE);
                        rt.wbinvd(full_bytes);
                        full_bytes
                    }
                    FlushStrategy::RangeFlush => {
                        rt.trace_store(region.base, full_bytes, SITE);
                        rt.flush_range(region.base, full_bytes, SITE);
                        full_bytes
                    }
                    FlushStrategy::DirtyLines => {
                        let dirty = rep.ds.dirty_bytes_since_checkpoint();
                        if dirty > 0 {
                            // With the sanitizer on and precise lines
                            // available, give each flushed line its exact
                            // address in the replica's logical space; the
                            // cost and stats are identical to the batched
                            // range flush (one CLFLUSHOPT per line).
                            let lines = if rt.psan_enabled() {
                                rep.ds.dirty_lines_since_checkpoint()
                            } else {
                                None
                            };
                            match lines {
                                Some(lines) => {
                                    for off in lines {
                                        rt.trace_store(region.base + off, 64, SITE);
                                        rt.clflushopt_at(region.base + off, SITE);
                                    }
                                }
                                None => {
                                    rt.trace_store(region.base, dirty, SITE);
                                    rt.flush_range(region.base, dirty, SITE);
                                }
                            }
                        }
                        dirty
                    }
                };
                if self.state.psan_fault != Some(PsanFault::SkipCheckpointFence) {
                    rt.sfence();
                }
                rt.count_checkpoint(flushed_bytes);
                if rt.crash_sim_enabled() {
                    if dirty_lines {
                        // Incremental image update: replay exactly the ops
                        // this replica applied since its last checkpoint
                        // onto the stored snapshot. No deep clone — an
                        // unchanged replica checkpoints for free.
                        let ops = std::mem::take(&mut rep.pending);
                        self.images[active].apply_delta(
                            &rt,
                            rep.local_tail,
                            flushed_bytes,
                            |img| {
                                for op in &ops {
                                    img.apply(op);
                                }
                            },
                        );
                    } else {
                        self.images[active].install_snapshot(
                            &rt,
                            rep.ds.clone_object(),
                            rep.local_tail,
                            full_bytes,
                        );
                    }
                }
                if dirty_lines {
                    rep.ds.clear_dirty();
                }
                // Swap active/stable; persist the selector (CLFLUSH, §5.1)
                // BEFORE raising the boundary: the boundary admits new
                // completions against the *new* stable checkpoint, so the
                // selector naming that checkpoint must be durable first (a
                // crash in between would otherwise recover the old stable
                // replica against a window sized for the new one).
                let new_active = 1 - active as u64;
                // ord: Release publishes the checkpoint written above before
                // the selector that names it becomes visible.
                self.state.p_active.store(new_active, Ordering::Release);
                // Store + CLFLUSH as one atomic persist. The selector is a
                // *publish*: once durable, recovery trusts the checkpoint
                // it names, so every byte of the just-checkpointed replica
                // must already be durable.
                // lint:allow(flush-before-publish): two statically-joined
                // paths are infeasible or deliberate — (1) the DirtyLines
                // arm skips the flush only when dirty_bytes == 0, which
                // cannot co-occur with ops applied this cycle (every
                // nvm_write above marks lines dirty); (2) the sfence is
                // skipped only under PsanFault::SkipCheckpointFence, the
                // fault-injection arm whose entire point is that the
                // sanitizer catches the unfenced publish at runtime
                rt.publish_clflush(
                    self.state.psan.p_active_addr,
                    std::mem::size_of::<u64>() as u64,
                    &[(region.base, region.len)],
                    PublishTag::CheckpointMarker,
                    "PersistenceTask::swap",
                );
                self.state.p_active_cell.record(&rt, new_active);
                // The checkpoint just published covers [0, local_tail): any
                // crash from here on recovers at least this prefix. This is
                // the watermark durable-ack release points wait on.
                self.state
                    .durable_tail
                    // ord: AcqRel — Release publishes the checkpoint behind
                    // the watermark to durable_watermark()'s Acquire
                    // readers; Acquire keeps competing maxima ordered (only
                    // this thread writes it today, but fetch_max is how it
                    // stays monotone).
                    .fetch_max(rep.local_tail, Ordering::AcqRel);
                // Advance the boundary to exactly ε past what was just
                // persisted. This is the invariant the ε + β − 1 loss bound
                // rests on: `flushBoundary ≤ stableTail + ε` at all times,
                // so completed entries (≤ boundary − 1 + β) never outrun the
                // stable checkpoint by more than ε + β − 1. (The paper's
                // `flushBoundary += ε` is equivalent on its trigger, where
                // localTail ≥ boundary always; our early-persist backstop
                // can fire below the boundary, where `+= ε` would widen the
                // window beyond ε.)
                let new_boundary = rep.local_tail + self.epsilon;
                self.state
                    .flush_boundary
                    // ord: Release — reserve_admitted's Acquire must see the
                    // durable checkpoint this boundary is sized against.
                    .store(new_boundary, Ordering::Release);
                // Entries below both persistent tails can never be needed by
                // recovery again; let the durable log image reclaim them.
                if self.state.durability == DurabilityLevel::Durable {
                    let min_tail = self.replicas[0].local_tail.min(self.replicas[1].local_tail);
                    self.state.log_image.retain_from(&rt, min_tail);
                }
                progressed = true;
            }

            if progressed {
                w.reset();
            } else {
                w.wait();
            }
        }
    }
}

/// Spawns the persistence thread. Returns its join handle; it exits when
/// `state.stop` is raised.
pub(crate) fn spawn_persistence_thread<T: SequentialObject>(
    task: PersistenceTask<T>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("prep-persistence".into())
        .spawn(move || task.run())
        .expect("failed to spawn persistence thread")
}

#[cfg(test)]
mod tests {
    use crate::config::{DurabilityLevel, PrepConfig};
    use crate::puc::PrepUc;
    use prep_seqds::recorder::{Recorder, RecorderOp};
    use prep_topology::Topology;
    use std::sync::atomic::Ordering;

    fn crash_cfg(level: DurabilityLevel, eps: u64) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(eps)
            .with_runtime(prep_pmem::PmemRuntime::for_crash_tests())
    }

    #[test]
    fn persistence_thread_tracks_completed_tail() {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(
            Recorder::new(),
            asg,
            crash_cfg(DurabilityLevel::Buffered, 8),
        );
        let t = prep.register(0);
        for i in 0..20u64 {
            prep.execute(&t, RecorderOp::Record(i));
        }
        // The active replica must eventually reach completedTail = 20.
        prep_sync::spin_until(|| {
            let s = prep.hook_state();
            s.p_tails[0]
                .load(Ordering::Acquire)
                .max(s.p_tails[1].load(Ordering::Acquire))
                >= 20
        });
    }

    #[test]
    fn flush_boundary_advances_and_roles_swap() {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(
            Recorder::new(),
            asg,
            crash_cfg(DurabilityLevel::Buffered, 4),
        );
        let t = prep.register(0);
        for i in 0..40u64 {
            prep.execute(&t, RecorderOp::Record(i));
        }
        let rt = prep.runtime();
        // ε = 4 and 40 completed updates → several persist cycles.
        prep_sync::spin_until(|| rt.stats().snapshot_count() >= 3);
        assert!(rt.stats().wbinvd_count() >= 3);
        // p_activePReplica was persisted at least once per swap.
        let active_img = prep.hook_state().p_active_cell.read_image();
        assert!(active_img <= 1);
        // The stable replica image is a consistent (non-torn) prefix.
        let stable = (1 - prep.hook_state().p_active.load(Ordering::Acquire)) as usize;
        let snap = prep
            .replica_image(stable)
            .read_image()
            .expect("stable image torn");
        assert!(snap.local_tail >= 4);
    }
}
