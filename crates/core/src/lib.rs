//! # PREP-UC: A Practical Replicated Persistent Universal Construction
//!
//! Reproduction of Coccimiglio, Brown & Ravi (SPAA 2022). Given a sequential
//! object (anything implementing [`prep_seqds::SequentialObject`]), PREP-UC
//! produces a concurrent, NUMA-aware, **recoverable** object — without
//! modifying, instrumenting, or even seeing the sequential code.
//!
//! ## Architecture (paper §4)
//!
//! PREP-UC is node replication (NR-UC, `prep-nr`) plus persistence:
//!
//! * the **shared operation log** doubles as a redo log: its order is the
//!   linearization order, and (durable mode) it is flushed to NVM batch by
//!   batch;
//! * two **persistence-only replicas** live in NVM. A dedicated
//!   *persistence thread* replays the log onto the **active** one; the
//!   **stable** one is quiescent and consistent in NVM. When the log
//!   approaches the flush boundary the active replica is written back with
//!   WBINVD, the roles swap (persisted `p_activePReplica` flag), and the
//!   flush boundary advances by **ε**;
//! * reservations on the log are **gated** at the flush boundary
//!   (Algorithm 4), which is what bounds post-crash loss.
//!
//! ## The two durability levels
//!
//! | | persists | loses on crash (completed ops) |
//! |---|---|---|
//! | [`DurabilityLevel::Buffered`] | 2 replicas + `p_activePReplica` | ≤ `ε + β − 1` |
//! | [`DurabilityLevel::Durable`] | the above + log entries + `completedTail` | 0 |
//!
//! (Durable mode can still lose operations that were *pending* — invoked but
//! not completed — at the crash: at most one per worker thread.)
//!
//! ## Quick start
//!
//! ```
//! use prep_uc::{DurabilityLevel, PrepConfig, PrepUc};
//! use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
//! use prep_topology::Topology;
//!
//! let asg = Topology::small().assign_workers(2);
//! let prep = PrepUc::new(
//!     HashMap::new(),
//!     asg,
//!     PrepConfig::new(DurabilityLevel::Buffered).with_log_size(256).with_epsilon(64),
//! );
//! let token = prep.register(0);
//! prep.execute(&token, MapOp::Insert { key: 1, value: 10 });
//! assert_eq!(
//!     prep.execute(&token, MapOp::Get { key: 1 }),
//!     MapResp::Value(Some(10))
//! );
//! ```
//!
//! Crash simulation and recovery are first-class (this reproduction's NVM is
//! an emulator — see `prep-pmem` and DESIGN.md): [`PrepUc::simulate_crash`]
//! captures a consistent cut of everything persisted, and
//! [`PrepUc::recover`] rebuilds the object from it exactly as §5.1/§5.2
//! prescribe.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod hooks;
mod multilog;
mod persistence;
mod puc;
mod recovery;

pub use config::{DurabilityLevel, FlushStrategy, PrepConfig, PsanFault};
pub use hooks::PrepHooks;
pub use multilog::{mix64, LaneRouter, MlCheckpoint, MlCrashImage, MultiLogUc, MAX_LOGS};
pub use puc::{PrepUc, PrepVolatile};
pub use recovery::CrashImage;

pub use prep_nr::{FairnessMode, MlToken, ThreadToken};
pub use prep_pmem::{LatencyModel, PmemRuntime};
