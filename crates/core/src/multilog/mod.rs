//! Multi-log partitioned replication: the persistent CNR construction.
//!
//! One combiner per shard is the single-log construction's write ceiling:
//! every update serializes through one shared log. Following CNR (NrOS,
//! OSDI '21), this module partitions the update stream across `L`
//! independent persistent logs. Commuting operations — single-key ops,
//! routed by key hash — flow through per-log combiners concurrently
//! against a **partitioned** replica (lane `l` holds the keys that hash to
//! log `l`). Non-commuting operations (multi-key updates, scans) take the
//! cross-log ordering path: reserve one slot in *every* log under a serial
//! gate and apply at the joint frontier (see [`prep_nr::mluc`]).
//!
//! Persistence composes per log: each log keeps its own flush-boundary
//! gate, durable `completedTail` cell, and NVM entry image, so the per-log
//! loss bound is the single-log `ε + β − 1` and the combined bound is
//! `L·(ε + β − 1)`. The checkpoint, however, is **joint**: one
//! [`MlCheckpoint`] snapshots every lane at a tail *vector* taken at the
//! persistence thread's joint frontier, and one durable selector publish
//! flips the whole vector — so recovery never mixes epochs across lanes
//! and never sees half a cross-log operation (see
//! [`persistence`](self)-module docs and `recovery`).

mod hooks;
mod persistence;
mod recovery;

use std::sync::atomic::Ordering;
use std::sync::Arc;

use prep_nr::{MlHooks, MlOp, MlToken, MultiLaneReplicated};
use prep_pmem::{PmemRuntime, PmemStatsSnapshot, ReplicaImage};
use prep_seqds::SequentialObject;

use crate::config::PrepConfig;

pub(crate) use hooks::MlHookState;
pub use hooks::MAX_LOGS;
pub use persistence::MlCheckpoint;
use persistence::{spawn_ml_persistence_thread, MlPReplica, MlPersistenceTask};
pub use recovery::MlCrashImage;

/// SplitMix64: the same full-avalanche mix `prep-shard` routes with, so a
/// key's log index and shard index come from independent bit ranges of one
/// hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Lane classifier: `Some(l)` routes the op to lane `l`, `None` marks it
/// cross-log (see [`LaneRouter`]).
type LaneOfFn<T> = Arc<dyn Fn(&<T as SequentialObject>::Op, usize) -> Option<usize> + Send + Sync>;
/// Cross-log response fold: combines the per-lane responses into one.
type FoldFn<T> = Arc<
    dyn Fn(
            &<T as SequentialObject>::Op,
            Vec<<T as SequentialObject>::Resp>,
        ) -> <T as SequentialObject>::Resp
        + Send
        + Sync,
>;

/// Routes operations to logs (lanes) and folds cross-log responses.
///
/// `lane_of` classifies an operation: `Some(l)` means the op touches only
/// keys owned by lane `l` (it commutes with everything outside lane `l`
/// and takes the concurrent per-log path); `None` means it is a cross-log
/// op (multi-key update, scan) and takes the ordered path through every
/// log. `fold` combines the per-lane responses of a cross-log op into one.
pub struct LaneRouter<T: SequentialObject> {
    lane_of: LaneOfFn<T>,
    fold: FoldFn<T>,
}

impl<T: SequentialObject> Clone for LaneRouter<T> {
    fn clone(&self) -> Self {
        LaneRouter {
            lane_of: Arc::clone(&self.lane_of),
            fold: Arc::clone(&self.fold),
        }
    }
}

impl<T: SequentialObject> LaneRouter<T> {
    /// Builds a router from a lane classifier and a cross-log fold.
    ///
    /// `lane_of` receives the op and the lane count; it must be a pure
    /// function of the op (the same op must route to the same lane on
    /// every call, including after recovery).
    pub fn new(
        lane_of: impl Fn(&T::Op, usize) -> Option<usize> + Send + Sync + 'static,
        fold: impl Fn(&T::Op, Vec<T::Resp>) -> T::Resp + Send + Sync + 'static,
    ) -> Self {
        LaneRouter {
            lane_of: Arc::new(lane_of),
            fold: Arc::new(fold),
        }
    }

    /// Key-hash partitioning: `key_of` returning `Some(k)` routes the op to
    /// lane `mix64(k) % lanes`; `None` marks it cross-log.
    pub fn by_key(
        key_of: impl Fn(&T::Op) -> Option<u64> + Send + Sync + 'static,
        fold: impl Fn(&T::Op, Vec<T::Resp>) -> T::Resp + Send + Sync + 'static,
    ) -> Self {
        Self::new(
            move |op, lanes| key_of(op).map(|k| (mix64(k) % lanes as u64) as usize),
            fold,
        )
    }

    /// Routes one op: `Some(lane)` or `None` for cross-log.
    pub fn lane_of(&self, op: &T::Op, lanes: usize) -> Option<usize> {
        (self.lane_of)(op, lanes)
    }
}

/// The persistence hooks adapter: what plugs [`MlHookState`] into the
/// multi-lane engine (the multi-log analog of `PrepHooks`).
pub(crate) struct MlPrepHooks<O: Clone> {
    pub(crate) state: Arc<MlHookState<O>>,
}

impl<O: Clone + Send + Sync + 'static> MlHooks<O> for MlPrepHooks<O> {
    fn reserve_admitted(&self, log: usize, tail: u64) -> bool {
        self.state.reserve_admitted(log, tail)
    }

    fn persist_batch_payload(&self, log: usize, range: std::ops::Range<u64>, _ops: &[MlOp<O>]) {
        self.state.persist_batch_payload(log, range);
    }

    fn persist_batch_published(&self, log: usize, range: std::ops::Range<u64>, ops: &[MlOp<O>]) {
        self.state.persist_batch_published(log, range, ops);
    }

    fn ensure_completed_tail_durable(&self, log: usize, ct: u64) {
        self.state.ensure_ct_durable(log, ct);
    }

    fn persistent_tails(&self, log: usize) -> [u64; 2] {
        let pl = &self.state.logs[log];
        [
            // ord: Acquire pairs with the persistence thread's tail Release
            // stores; tail t implies entries below t were applied.
            pl.p_tails[0].load(Ordering::Acquire),
            // ord: see above.
            pl.p_tails[1].load(Ordering::Acquire),
        ]
    }
}

/// The inner multi-lane engine with PREP's hooks installed.
pub(crate) type MlInner<T> = MultiLaneReplicated<T, MlPrepHooks<<T as SequentialObject>::Op>>;

/// A multi-log replicated persistent universal construction (persistent
/// CNR; module docs).
///
/// Construction spawns the joint persistence thread; dropping the
/// `MultiLogUc` stops and joins it. Worker threads interact through
/// [`MultiLogUc::register`]/[`MultiLogUc::execute`]; the router decides
/// per op whether it takes the concurrent per-log path or the ordered
/// cross-log path.
pub struct MultiLogUc<T: SequentialObject> {
    engine: Arc<MlInner<T>>,
    state: Arc<MlHookState<T::Op>>,
    images: Arc<[ReplicaImage<MlCheckpoint<T>>; 2]>,
    router: LaneRouter<T>,
    config: PrepConfig,
    max_workers: usize,
    persistence: Option<std::thread::JoinHandle<()>>,
}

impl<T: SequentialObject> MultiLogUc<T> {
    /// Builds a multi-log PREP over `obj` with `logs` logs.
    ///
    /// Every lane's partition starts as a clone of `obj` — pass the empty
    /// object; the router's key partitioning keeps each lane populated only
    /// with its own keys.
    ///
    /// # Panics
    /// Panics if `logs` is outside `1..=MAX_LOGS` or the configuration
    /// violates `ε ≤ LOG_SIZE − β − 1` with `β = max_workers`.
    pub fn new(
        obj: T,
        router: LaneRouter<T>,
        logs: usize,
        max_workers: usize,
        config: PrepConfig,
    ) -> Self {
        let states = (0..logs).map(|_| obj.clone_object()).collect();
        Self::from_lane_states(states, router, max_workers, config)
    }

    /// Builds a multi-log PREP whose lane `l` starts from `states[l]` —
    /// the recovery entry point ([`MultiLogUc::recover`]).
    pub fn from_lane_states(
        states: Vec<T>,
        router: LaneRouter<T>,
        max_workers: usize,
        config: PrepConfig,
    ) -> Self {
        let logs = states.len();
        // β: every registered worker can land in one log's combining batch.
        config.validate(max_workers as u64);
        let state = MlHookState::new(
            Arc::clone(&config.runtime),
            config.durability,
            config.epsilon,
            logs,
        );
        let ckpt = |states: &[T]| MlCheckpoint {
            lanes: states.iter().map(|s| s.clone_object()).collect(),
            tails: vec![0; logs],
        };
        let images = Arc::new([
            ReplicaImage::new(ckpt(&states)),
            ReplicaImage::new(ckpt(&states)),
        ]);
        let replicas = [
            MlPReplica {
                lanes: states.iter().map(|s| s.clone_object()).collect(),
                tails: vec![0; logs],
            },
            MlPReplica {
                lanes: states.iter().map(|s| s.clone_object()).collect(),
                tails: vec![0; logs],
            },
        ];
        let engine = Arc::new(MultiLaneReplicated::from_lane_states(
            states,
            max_workers,
            config.log_size,
            MlPrepHooks {
                state: Arc::clone(&state),
            },
        ));
        let persistence = spawn_ml_persistence_thread(MlPersistenceTask {
            engine: Arc::clone(&engine),
            state: Arc::clone(&state),
            images: Arc::clone(&images),
            replicas,
            epsilon: config.epsilon,
            allocator_swap: config.allocator_swap,
            flush_strategy: config.flush_strategy,
        });
        MultiLogUc {
            engine,
            state,
            images,
            router,
            config,
            max_workers,
            persistence: Some(persistence),
        }
    }

    /// Registers worker `worker` (one flat-combining slot per log).
    ///
    /// # Panics
    /// Panics if `worker >= max_workers` or is already registered.
    pub fn register(&self, worker: usize) -> MlToken {
        self.engine.register(worker)
    }

    /// `ExecuteConcurrent` over the partitioned object: routes `op` to its
    /// log (concurrent path) or through every log (ordered cross-log
    /// path), with the construction's durability semantics.
    pub fn execute(&self, token: &MlToken, op: T::Op) -> T::Resp {
        match self.router.lane_of(&op, self.lanes()) {
            Some(l) if T::is_read_only(&op) => self.engine.execute_readonly(l, &op),
            Some(l) => self.engine.execute(token, l, op),
            None => {
                let resps = self.engine.execute_multi(&op);
                (self.router.fold)(&op, resps)
            }
        }
    }

    /// Number of logs (= lanes = replica partitions).
    pub fn lanes(&self) -> usize {
        self.engine.lanes()
    }

    /// β for this instance (worst-case batch: every worker in one log).
    pub fn beta(&self) -> u64 {
        self.max_workers as u64
    }

    /// Worst-case completed-update loss per crash: each log independently
    /// loses at most its `ε + β − 1` suffix, so the construction's bound is
    /// `L·(ε + β − 1)` buffered and 0 durable (see DESIGN.md "Multi-log
    /// cut").
    pub fn loss_bound(&self) -> u64 {
        self.lanes() as u64 * self.config.loss_bound(self.beta())
    }

    /// Observes lane `l`'s volatile partition, up to date with every
    /// completed update in log `l` (test/diagnostic API).
    pub fn with_lane<R>(&self, l: usize, f: impl FnOnce(&T) -> R) -> R {
        self.engine.with_lane(l, f)
    }

    /// Log `l`'s `completedTail`.
    pub fn completed_tail(&self, l: usize) -> u64 {
        self.engine.log_set().log(l).completed_tail()
    }

    /// All logs' `completedTail`s.
    pub fn completed_vector(&self) -> Vec<u64> {
        self.engine.completed_vector()
    }

    /// Combine rounds log `l`'s combiners have run (diagnostic; the
    /// writescale figure uses this to show all L combiners active).
    pub fn combine_rounds(&self, l: usize) -> u64 {
        self.engine.combine_rounds(l)
    }

    /// Log `l`'s crash-survivability watermark (cf. `PrepUc`'s scalar
    /// `durable_watermark`, per log).
    pub fn durable_watermark(&self, l: usize) -> u64 {
        self.state.durable_watermark(l)
    }

    /// Which persistent replica set is currently active (volatile view).
    pub fn active_persistent_replica(&self) -> u64 {
        // ord: Acquire pairs with the persistence thread's swap Release.
        self.state.p_active.load(Ordering::Acquire)
    }

    /// The construction's configuration.
    pub fn config(&self) -> &PrepConfig {
        &self.config
    }

    /// The persistence runtime (stats, crash capture).
    pub fn runtime(&self) -> &Arc<PmemRuntime> {
        &self.config.runtime
    }

    /// Snapshot of the persistence-operation counters.
    pub fn stats(&self) -> PmemStatsSnapshot {
        self.config.runtime.stats().snapshot()
    }

    pub(crate) fn hook_state(&self) -> &Arc<MlHookState<T::Op>> {
        &self.state
    }

    pub(crate) fn replica_image(&self, idx: usize) -> &ReplicaImage<MlCheckpoint<T>> {
        &self.images[idx]
    }

    /// Asks the persistence thread to checkpoint *now*: lowers every
    /// lagging log's flush boundary to its applied tail (cf.
    /// `PrepUc::nudge_checkpoint`; safe for the same reason — persisting
    /// earlier than ε only tightens the loss bound).
    pub fn nudge_checkpoint(&self) {
        // ord: Acquire pairs with the persistence thread's swap Release so
        // the tails read below belong to the replica we think is active.
        let active = self.state.p_active.load(Ordering::Acquire) as usize;
        for l in 0..self.lanes() {
            if self.durable_watermark(l) >= self.completed_tail(l) {
                continue;
            }
            let pl = &self.state.logs[l];
            // ord: Acquire pairs with the tail's Release store.
            let target = pl.p_tails[active].load(Ordering::Acquire).max(1);
            // ord: AcqRel — Release so the persistence thread's Acquire of
            // the lowered boundary sees the state that motivated it;
            // Acquire orders racing lowerings (fetch_min keeps the
            // tightest).
            pl.flush_boundary.fetch_min(target, Ordering::AcqRel);
        }
    }

    /// Blocks until every operation completed *before this call* — in every
    /// log — is crash survivable, nudging the persistence thread along.
    pub fn quiesce_persistence(&self) {
        let mut w = prep_sync::Waiter::new();
        loop {
            let covered =
                (0..self.lanes()).all(|l| self.durable_watermark(l) >= self.completed_tail(l));
            if covered {
                return;
            }
            self.nudge_checkpoint();
            w.wait();
        }
    }
}

impl<T: SequentialObject> Drop for MultiLogUc<T> {
    fn drop(&mut self) {
        // ord: Release pairs with the persistence thread's stop Acquire —
        // everything this instance wrote is visible to its final pass.
        self.state.stop.store(true, Ordering::Release);
        if let Some(h) = self.persistence.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DurabilityLevel;
    use prep_pmem::PmemRuntime;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};

    fn cfg(level: DurabilityLevel) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(32)
            .with_runtime(PmemRuntime::for_crash_tests())
    }

    pub(super) fn map_router() -> LaneRouter<HashMap> {
        LaneRouter::by_key(
            |op: &MapOp| op.key(),
            |_, resps| {
                let total = resps
                    .into_iter()
                    .map(|r| match r {
                        MapResp::Len(n) => n,
                        other => panic!("fold over non-Len {other:?}"),
                    })
                    .sum();
                MapResp::Len(total)
            },
        )
    }

    #[test]
    fn partitioned_map_roundtrip_with_cross_log_len() {
        for level in [DurabilityLevel::Buffered, DurabilityLevel::Durable] {
            let uc = MultiLogUc::new(HashMap::new(), map_router(), 4, 2, cfg(level));
            let t = uc.register(0);
            for k in 0..100u64 {
                uc.execute(&t, MapOp::Insert { key: k, value: !k });
            }
            for k in 0..100u64 {
                assert_eq!(
                    uc.execute(&t, MapOp::Get { key: k }),
                    MapResp::Value(Some(!k))
                );
            }
            // Cross-log scan: folds per-lane lengths at the joint frontier.
            assert_eq!(uc.execute(&t, MapOp::Len), MapResp::Len(100));
            // The hash spreads 100 keys over all 4 lanes.
            for l in 0..4 {
                assert!(uc.completed_tail(l) > 0, "lane {l} never used");
            }
        }
    }

    #[test]
    fn concurrent_writers_scale_across_logs() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 250;
        let uc = Arc::new(MultiLogUc::new(
            HashMap::new(),
            map_router(),
            4,
            THREADS,
            cfg(DurabilityLevel::Buffered),
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let uc = Arc::clone(&uc);
                std::thread::spawn(move || {
                    let t = uc.register(w);
                    for i in 0..PER_THREAD {
                        let key = (w as u64) << 32 | i;
                        uc.execute(&t, MapOp::Insert { key, value: i });
                        if i % 50 == 49 {
                            uc.execute(&t, MapOp::Len);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let singles: u64 = (0..4).map(|l| uc.completed_tail(l)).sum();
        // THREADS·PER_THREAD inserts + len ops (1 entry per lane each).
        let lens = THREADS as u64 * (PER_THREAD / 50);
        assert_eq!(singles, THREADS as u64 * PER_THREAD + lens * 4);
    }

    #[test]
    fn quiesce_covers_every_log() {
        let uc = MultiLogUc::new(
            HashMap::new(),
            map_router(),
            3,
            1,
            cfg(DurabilityLevel::Buffered).with_epsilon(64),
        );
        let t = uc.register(0);
        for k in 0..30u64 {
            uc.execute(&t, MapOp::Insert { key: k, value: k });
        }
        uc.quiesce_persistence();
        for l in 0..3 {
            assert!(
                uc.durable_watermark(l) >= uc.completed_tail(l),
                "log {l} watermark below completedTail after quiesce"
            );
        }
    }

    #[test]
    fn loss_bound_composes_over_logs() {
        let uc = MultiLogUc::new(
            HashMap::new(),
            map_router(),
            4,
            3,
            cfg(DurabilityLevel::Buffered).with_epsilon(10),
        );
        assert_eq!(uc.beta(), 3);
        assert_eq!(uc.loss_bound(), 4 * (10 + 3 - 1));
        let d = MultiLogUc::new(
            HashMap::new(),
            map_router(),
            4,
            3,
            cfg(DurabilityLevel::Durable),
        );
        assert_eq!(d.loss_bound(), 0);
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r = map_router();
        for k in 0..1000u64 {
            let op = MapOp::Get { key: k };
            let l = r.lane_of(&op, 5).unwrap();
            assert!(l < 5);
            assert_eq!(r.lane_of(&op, 5), Some(l));
        }
        assert_eq!(r.lane_of(&MapOp::Len, 5), None);
    }
}
