//! Crash simulation and recovery for the multi-log construction.
//!
//! The crash image is a **cut vector**: one selector names one
//! [`MlCheckpoint`] holding every lane's state at a tail vector taken at
//! the persistence thread's joint frontier — so the checkpoint includes a
//! cross-log operation in all lanes or in none. Buffered recovery is
//! therefore just "clone the stable checkpoint's lanes".
//!
//! Durable recovery replays each log's persisted entries
//! `[tails[l], completedTails[l])` onto its lane, then runs a
//! **completion pass** for cross-log operations: a multi durable in one
//! log was persisted in *every* log before it was published in any
//! (`MlHookState::persist_batch_published`), so a lane whose
//! `completedTail` stopped short of the multi can still fetch the payload
//! from the image and apply it. Because the gate gives multis the same
//! (ascending id) order in every log, the missing multis are always a
//! suffix of the lane's multi sequence — appending them in id order after
//! the lane's surviving prefix is exactly log order, and the result is
//! all-or-nothing across lanes.

use std::collections::{BTreeMap, BTreeSet};

use prep_nr::MlOp;
use prep_pmem::{CrashToken, ReplicaSnapshot, TornImage};
use prep_seqds::SequentialObject;

use crate::config::{DurabilityLevel, PrepConfig};
use crate::multilog::hooks::MlHookState;
use crate::multilog::{LaneRouter, MlCheckpoint, MultiLogUc};

/// Everything that was durable at the instant of a (simulated) power
/// failure — a consistent cut of the multi-log NVM image.
pub struct MlCrashImage<T: SequentialObject> {
    /// The persisted joint `p_activePReplica` selector.
    pub active: u64,
    /// The two persistent replica *sets*' NVM images (each a full
    /// [`MlCheckpoint`]: every lane + the tail vector). The stable one is
    /// always consistent; the active one may be torn.
    pub replicas: [Result<ReplicaSnapshot<MlCheckpoint<T>>, TornImage>; 2],
    /// Each log's persisted `completedTail` (durable mode; zeros
    /// otherwise).
    pub completed_tails: Vec<u64>,
    /// Each log's persisted entries, `(monotonic index, entry)`, ascending
    /// (durable mode; empty otherwise).
    pub log_entries: Vec<Vec<(u64, MlOp<T::Op>)>>,
}

impl<T: SequentialObject> MlCrashImage<T> {
    /// Index of the stable persistent replica set (the one recovery reads).
    pub fn stable_index(&self) -> usize {
        (1 - self.active) as usize
    }

    /// The stable replica set's snapshot.
    ///
    /// # Panics
    /// Panics if the stable image is torn, which the two-replica protocol
    /// makes impossible (only the active set is ever mutated).
    pub fn stable_snapshot(&self) -> &ReplicaSnapshot<MlCheckpoint<T>> {
        self.replicas[self.stable_index()]
            .as_ref()
            .expect("stable persistent replica set is torn: two-replica invariant violated")
    }
}

impl<T: SequentialObject> MultiLogUc<T> {
    /// Simulates a full-system power failure: captures a consistent cut of
    /// everything persisted — across **all** logs at once — without
    /// disturbing the running instance.
    ///
    /// # Panics
    /// Panics unless the runtime was created with crash simulation enabled.
    pub fn simulate_crash(&self) -> (CrashToken, MlCrashImage<T>) {
        let (token, image) = self.runtime().capture_cut(|| self.crash_image_in_cut());
        (token, image)
    }

    /// Reads this instance's crash image **inside an already-frozen
    /// consistent cut** (cf. `PrepUc::crash_image_in_cut`; the multi-log
    /// cut is a vector, captured whole under one freeze).
    pub fn crash_image_in_cut(&self) -> MlCrashImage<T> {
        let state = self.hook_state();
        let lanes = self.lanes();
        let image = MlCrashImage {
            active: state.p_active_cell.read_image(),
            replicas: [
                self.replica_image(0).read_image(),
                self.replica_image(1).read_image(),
            ],
            completed_tails: (0..lanes)
                .map(|l| state.logs[l].ct_cell.read_image())
                .collect(),
            log_entries: (0..lanes)
                .map(|l| state.logs[l].log_image.persisted_range(0, u64::MAX))
                .collect(),
        };
        // Tell the sanitizer what recovery relies on from this cut: the
        // joint selector, the whole stable set it names, and (durable
        // mode) each log's completedTail cell plus the log bytes recovery
        // replays — per log, bounded by that log's cut tails. Rule 3 then
        // verifies every byte was durable at the cut, per log and at the
        // vector.
        let rt = self.runtime();
        if rt.psan_enabled() {
            const SITE: &str = "MultiLogUc::crash_image_in_cut";
            let cell = std::mem::size_of::<u64>() as u64;
            rt.trace_recovery_read(state.psan.p_active_addr, cell, SITE);
            let stable = image.stable_index();
            if let Ok(snap) = &image.replicas[stable] {
                let region = state.psan.replicas[stable];
                rt.trace_recovery_read(region.base, region.len, SITE);
                if self.config().durability == DurabilityLevel::Durable {
                    let eb = MlHookState::<T::Op>::entry_bytes();
                    for l in 0..lanes {
                        rt.trace_recovery_read(state.psan.ct_addrs[l], cell, SITE);
                        let from = snap.state.tails[l] * eb;
                        let to = image.completed_tails[l] * eb;
                        if to > from {
                            rt.trace_recovery_read(state.psan.log_bases[l] + from, to - from, SITE);
                        }
                    }
                }
            }
        }
        image
    }

    /// The multi-log recovery procedure (module docs): stable cut vector,
    /// then (durable mode) per-log replay plus the cross-log completion
    /// pass, then a fresh construction from the recovered lane states.
    pub fn recover(
        _crash: CrashToken,
        image: MlCrashImage<T>,
        router: LaneRouter<T>,
        max_workers: usize,
        config: PrepConfig,
    ) -> Self {
        let snap = image.stable_snapshot();
        let logs = snap.state.lanes.len();
        let mut lanes: Vec<T> = snap.state.lanes.iter().map(|s| s.clone_object()).collect();
        if config.durability == DurabilityLevel::Durable {
            // Every persisted multi payload, by gate id — any lane's image
            // can complete any other lane's missing suffix (module docs).
            let mut all_multis: BTreeMap<u64, T::Op> = BTreeMap::new();
            for lane_entries in &image.log_entries {
                for (_, entry) in lane_entries {
                    if let MlOp::Multi { id, op } = entry {
                        all_multis.insert(*id, op.clone());
                    }
                }
            }
            // Per-log replay of the durable suffix, in log order.
            let mut replayed_ids: BTreeSet<u64> = BTreeSet::new();
            let mut seen: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); logs];
            for l in 0..logs {
                let from = snap.state.tails[l];
                let to = image.completed_tails[l];
                for (idx, entry) in &image.log_entries[l] {
                    if *idx < from || *idx >= to {
                        continue;
                    }
                    match entry {
                        MlOp::Single { op, .. } => {
                            lanes[l].apply(op);
                        }
                        MlOp::Multi { id, op } => {
                            lanes[l].apply(op);
                            seen[l].insert(*id);
                            replayed_ids.insert(*id);
                        }
                    }
                }
            }
            // Completion pass: a multi that took effect in any lane takes
            // effect in every lane. Ascending id = log order (module docs).
            for l in 0..logs {
                for (id, op) in &all_multis {
                    if replayed_ids.contains(id) && !seen[l].contains(id) {
                        lanes[l].apply(op);
                    }
                }
            }
        }
        MultiLogUc::from_lane_states(lanes, router, max_workers, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DurabilityLevel;
    use crate::multilog::tests::map_router;
    use prep_pmem::PmemRuntime;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
    use prep_seqds::SequentialObject;

    const LOGS: usize = 3;

    fn cfg(level: DurabilityLevel, eps: u64) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(eps)
            .with_runtime(PmemRuntime::for_crash_tests())
    }

    fn lane_histogram(uc: &MultiLogUc<HashMap>, upto: u64) -> Vec<Option<u64>> {
        (0..upto)
            .map(|k| {
                uc.with_lane(
                    map_router().lane_of(&MapOp::Get { key: k }, LOGS).unwrap(),
                    |m| match m.apply_readonly(&MapOp::Get { key: k }) {
                        MapResp::Value(v) => v,
                        other => panic!("unexpected {other:?}"),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn durable_recovers_every_completed_op_in_every_log() {
        let uc = MultiLogUc::new(
            HashMap::new(),
            map_router(),
            LOGS,
            1,
            cfg(DurabilityLevel::Durable, 16),
        );
        let t = uc.register(0);
        for k in 0..80u64 {
            uc.execute(
                &t,
                MapOp::Insert {
                    key: k,
                    value: k * 7,
                },
            );
        }
        let (token, image) = uc.simulate_crash();
        drop(uc);
        let rec = MultiLogUc::recover(
            token,
            image,
            map_router(),
            1,
            cfg(DurabilityLevel::Durable, 16),
        );
        let vals = lane_histogram(&rec, 80);
        for (k, v) in vals.iter().enumerate() {
            assert_eq!(*v, Some(k as u64 * 7), "key {k} lost in durable mode");
        }
    }

    #[test]
    fn buffered_recovers_a_per_log_prefix() {
        let uc = MultiLogUc::new(
            HashMap::new(),
            map_router(),
            LOGS,
            1,
            cfg(DurabilityLevel::Buffered, 8),
        );
        let t = uc.register(0);
        for k in 0..120u64 {
            uc.execute(&t, MapOp::Insert { key: k, value: 1 });
        }
        let (token, image) = uc.simulate_crash();
        drop(uc);
        let rec = MultiLogUc::recover(
            token,
            image,
            map_router(),
            1,
            cfg(DurabilityLevel::Buffered, 8),
        );
        // Each lane survives as a prefix of its own log; combined loss is
        // bounded by L·(ε + β − 1).
        let vals = lane_histogram(&rec, 120);
        let survived = vals.iter().filter(|v| v.is_some()).count();
        let lost = 120 - survived;
        let bound = (LOGS as u64 * (8 + 1 - 1)) as usize;
        assert!(lost <= bound, "lost {lost} > L·(ε+β−1) = {bound}");
    }

    #[test]
    fn cross_log_op_is_atomic_across_the_cut() {
        // A durable-mode Len (cross-log) either folded over every lane or
        // none: recovery's completion pass must never leave a multi applied
        // in a strict subset of lanes. Detect via a Recorder-like trick:
        // apply Len through the engine, then crash at arbitrary points and
        // recover; the recovered per-lane maps must agree with a per-lane
        // prefix + all-or-nothing multis. With HashMap, Len doesn't mutate,
        // so instead use Insert broadcast through the multi path via a
        // router that declares one sentinel key cross-log.
        // Sentinel key u64::MAX is declared cross-log: inserting it
        // broadcasts through the ordered multi path into every lane.
        let mk_router = || {
            LaneRouter::<HashMap>::new(
                |op, lanes| match op.key() {
                    Some(u64::MAX) => None,
                    Some(k) => Some((crate::multilog::mix64(k) % lanes as u64) as usize),
                    None => None,
                },
                |_, mut resps| resps.pop().expect("at least one lane"),
            )
        };
        for n in [1u64, 7, 23, 61] {
            let uc = MultiLogUc::new(
                HashMap::new(),
                mk_router(),
                LOGS,
                1,
                cfg(DurabilityLevel::Durable, 16),
            );
            let t = uc.register(0);
            for i in 0..n {
                uc.execute(&t, MapOp::Insert { key: i, value: i });
                if i % 5 == 4 {
                    // Broadcast write: lands in every lane's map.
                    uc.execute(
                        &t,
                        MapOp::Insert {
                            key: u64::MAX,
                            value: i,
                        },
                    );
                }
            }
            let (token, image) = uc.simulate_crash();
            drop(uc);
            let rec = MultiLogUc::recover(
                token,
                image,
                mk_router(),
                1,
                cfg(DurabilityLevel::Durable, 16),
            );
            // All-or-nothing: every lane agrees on the sentinel's value.
            let sentinel: Vec<Option<u64>> = (0..LOGS)
                .map(|l| {
                    rec.with_lane(l, |m| {
                        match m.apply_readonly(&MapOp::Get { key: u64::MAX }) {
                            MapResp::Value(v) => v,
                            other => panic!("unexpected {other:?}"),
                        }
                    })
                })
                .collect();
            assert!(
                sentinel.windows(2).all(|w| w[0] == w[1]),
                "cross-log op torn across lanes: {sentinel:?} (n = {n})"
            );
        }
    }

    #[test]
    fn repeated_crashes_keep_the_composed_loss_bound() {
        let eps = 8u64;
        let mut uc = MultiLogUc::new(
            HashMap::new(),
            map_router(),
            LOGS,
            1,
            cfg(DurabilityLevel::Buffered, eps),
        );
        let mut next = 0u64;
        const CRASHES: u64 = 4;
        for _ in 0..CRASHES {
            let t = uc.register(0);
            for _ in 0..40 {
                uc.execute(
                    &t,
                    MapOp::Insert {
                        key: next,
                        value: 1,
                    },
                );
                next += 1;
            }
            let (token, image) = uc.simulate_crash();
            drop(uc);
            uc = MultiLogUc::recover(
                token,
                image,
                map_router(),
                1,
                cfg(DurabilityLevel::Buffered, eps),
            );
            let survived = lane_histogram(&uc, next)
                .iter()
                .filter(|v| v.is_some())
                .count() as u64;
            let lost = next - survived;
            assert!(
                lost <= CRASHES * LOGS as u64 * eps,
                "total loss {lost} exceeds c·L·(ε+β−1)"
            );
        }
    }

    #[test]
    fn stable_set_is_never_torn() {
        for n in [1u64, 9, 33, 90] {
            let uc = MultiLogUc::new(
                HashMap::new(),
                map_router(),
                LOGS,
                1,
                cfg(DurabilityLevel::Buffered, 8),
            );
            let t = uc.register(0);
            for k in 0..n {
                uc.execute(&t, MapOp::Insert { key: k, value: k });
            }
            let (_tok, image) = uc.simulate_crash();
            let snap = image.stable_snapshot();
            assert_eq!(snap.state.lanes.len(), LOGS);
            assert_eq!(snap.state.tails.len(), LOGS);
            let applied: u64 = snap.state.tails.iter().sum();
            assert!(applied <= n + 1);
        }
    }
}
