//! The multi-log persistence thread: Algorithm 2 vectored over lanes, with
//! **joint-frontier** replay and a single cut-vector checkpoint.
//!
//! One dedicated thread owns both persistent replica *sets* (one partition
//! per lane each). Per cycle it replays each lane's newly completed log
//! entries onto the active set — but a lane's replay **parks at a multi
//! entry** until every lane has reached its instance of the same multi,
//! and then all lanes step over it in the same cycle. The parked vector is
//! the joint frontier: a checkpoint taken at any cycle boundary therefore
//! never captures a cross-lane operation in some lanes but not others,
//! which is what makes the buffered-mode cut **atomic for multi-key ops**
//! without any extra commit record.
//!
//! The checkpoint itself is joint: flush every lane of the active set,
//! fence once, install one [`MlCheckpoint`] (all lane states + the tail
//! *vector*) and publish the single `p_activePReplica` selector covering
//! the whole set. One durable 8-byte publish flips the entire cut vector.
//! Each lane then gets its own flush boundary `tails[l] + ε`, so the
//! per-lane loss stays ≤ ε + β − 1 and the combined loss ≤ L·(ε + β − 1).
//!
//! `FlushStrategy::DirtyLines` falls back to a whole-set range flush here
//! (the partitions lack a shared logical address space to merge dirty
//! lines across); the single-log construction keeps the precise path.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use prep_nr::{MlOp, MultiLaneReplicated};
use prep_pmem::psan::PublishTag;
use prep_pmem::ReplicaImage;
use prep_seqds::SequentialObject;
use prep_sync::Waiter;

use crate::config::{DurabilityLevel, FlushStrategy};
use crate::multilog::hooks::MlHookState;
use crate::multilog::MlPrepHooks;

/// One persistent replica *set*: a partition per lane plus the applied
/// tail vector.
pub(crate) struct MlPReplica<T: SequentialObject> {
    pub(crate) lanes: Vec<T>,
    pub(crate) tails: Vec<u64>,
}

/// What one joint checkpoint stores: every lane's partition and the tail
/// **vector** it is consistent at. Installing this as a single snapshot —
/// and naming it with a single selector publish — is what makes the
/// multi-log cut a vector-atomic unit.
#[derive(Debug, Clone)]
pub struct MlCheckpoint<T: SequentialObject> {
    /// Per-lane partition states.
    pub lanes: Vec<T>,
    /// Per-lane applied tails (`lanes[l]` reflects its log below
    /// `tails[l]`). Never splits a multi: the joint-frontier replay steps
    /// all lanes over a multi in the same cycle.
    pub tails: Vec<u64>,
}

/// Everything the multi-log persistence thread needs, moved in at spawn.
pub(crate) struct MlPersistenceTask<T: SequentialObject> {
    pub(crate) engine: Arc<MultiLaneReplicated<T, MlPrepHooks<T::Op>>>,
    pub(crate) state: Arc<MlHookState<T::Op>>,
    pub(crate) images: Arc<[ReplicaImage<MlCheckpoint<T>>; 2]>,
    pub(crate) replicas: [MlPReplica<T>; 2],
    pub(crate) epsilon: u64,
    pub(crate) allocator_swap: bool,
    pub(crate) flush_strategy: FlushStrategy,
}

impl<T: SequentialObject> MlPersistenceTask<T> {
    /// The thread body: loop until `state.stop`.
    pub(crate) fn run(mut self) {
        let rt = Arc::clone(&self.state.rt);
        let lane_count = self.state.logs.len();
        let op_bytes = std::mem::size_of::<MlOp<T::Op>>() as u64;
        let mut w = Waiter::new();

        loop {
            // ord: Acquire pairs with shutdown's stop Release.
            if self.state.stop.load(Ordering::Acquire) {
                return;
            }
            // ord: Acquire pairs with our own swap Release (and
            // construction's initial store).
            let active = self.state.p_active.load(Ordering::Acquire) as usize;

            let mut progressed = self.replay(active, op_bytes, &rt);

            // Joint checkpoint trigger: any lane reached its boundary, or
            // any lane's gate is closed with everything applied and a
            // checkpoint would actually raise its boundary (the same
            // deadlock backstop as the single-log thread, per lane).
            let rep = &self.replicas[active];
            let mut trigger = false;
            for l in 0..lane_count {
                // ord: Acquire pairs with our own boundary Release (and
                // nudge_checkpoint's fetch_min).
                let boundary = self.state.logs[l].flush_boundary.load(Ordering::Acquire);
                let log = self.engine.log_set().log(l);
                let gate_closed = boundary <= log.log_tail();
                let backstop = gate_closed
                    && rep.tails[l] == log.completed_tail()
                    && rep.tails[l] + self.epsilon > boundary;
                if boundary <= rep.tails[l] || backstop {
                    trigger = true;
                    break;
                }
            }
            if trigger {
                self.checkpoint(active, &rt);
                progressed = true;
            }

            if progressed {
                w.reset();
            } else {
                w.wait();
            }
        }
    }

    /// Replays each lane's completed entries onto the active set, parking
    /// every lane at the joint frontier (module docs). Returns whether
    /// anything advanced.
    fn replay(&mut self, active: usize, op_bytes: u64, rt: &prep_pmem::PmemRuntime) -> bool {
        let lane_count = self.state.logs.len();
        let set = self.engine.log_set();
        let rep = &mut self.replicas[active];
        let region_base = self.state.psan.replicas[active].base;
        let swap = self.allocator_swap;
        let mut any = false;
        let mut torn = false;

        loop {
            let mut advanced = false;
            // (lane, multi id) pairs every lane is currently parked at.
            let mut parked: Vec<(usize, u64)> = Vec::new();
            for l in 0..lane_count {
                let ct = set.log(l).completed_tail();
                while rep.tails[l] < ct {
                    let idx = rep.tails[l];
                    let mut entry = None;
                    set.log(l)
                        .for_each_op(idx, idx + 1, |_, e| entry = Some(e.clone()));
                    match entry.expect("entries below completedTail are published") {
                        MlOp::Single { op, .. } => {
                            if !torn {
                                // First mutation since the last snapshot
                                // leaves the active set's image torn until
                                // the next checkpoint (§4.1).
                                self.images[active].mark_torn(rt);
                                torn = true;
                            }
                            // lint:allow(persist-hook): latency charge only
                            // — the replica bytes this store dirties become
                            // durable (and are traced) in checkpoint()'s
                            // trace_store/publish_clflush pass, as in the
                            // single-log persistence thread.
                            rt.nvm_write(region_base, op_bytes);
                            let ds = &mut rep.lanes[l];
                            if swap {
                                prep_pmem::alloc::with_persistent(|| {
                                    ds.apply(&op);
                                });
                            } else {
                                ds.apply(&op);
                            }
                            rep.tails[l] = idx + 1;
                            advanced = true;
                        }
                        MlOp::Multi { id, .. } => {
                            parked.push((l, id));
                            break;
                        }
                    }
                }
            }

            // The joint frontier: a multi is stepped over only when EVERY
            // lane is parked at its instance (same id — the gate gives
            // multis the same order in every log). Until then the tail
            // vector stays on the near side of the multi in all lanes, so
            // a checkpoint taken now cannot split it.
            if parked.len() == lane_count {
                let id0 = parked[0].1;
                debug_assert!(
                    parked.iter().all(|&(_, id)| id == id0),
                    "lanes parked at different multis — gate order violated"
                );
                if !torn {
                    self.images[active].mark_torn(rt);
                    torn = true;
                }
                for &(l, _) in &parked {
                    let idx = rep.tails[l];
                    let mut op = None;
                    set.log(l).for_each_op(idx, idx + 1, |_, e| {
                        if let MlOp::Multi { op: o, .. } = e {
                            op = Some(o.clone());
                        }
                    });
                    let op = op.expect("parked entry is a published multi");
                    // lint:allow(persist-hook): latency charge only — see
                    // the single-lane arm above; durability is traced at
                    // checkpoint().
                    rt.nvm_write(region_base, op_bytes);
                    let ds = &mut rep.lanes[l];
                    if swap {
                        prep_pmem::alloc::with_persistent(|| {
                            ds.apply(&op);
                        });
                    } else {
                        ds.apply(&op);
                    }
                    rep.tails[l] = idx + 1;
                }
                advanced = true;
            }

            if advanced {
                any = true;
            } else {
                break;
            }
        }

        if any {
            for l in 0..lane_count {
                self.state.logs[l].p_tails[active]
                    // ord: Release publishes the partition states just
                    // applied to applied_floor()'s Acquire readers.
                    .store(rep.tails[l], Ordering::Release);
            }
        }
        any
    }

    /// One joint checkpoint of the active set: flush all lanes, fence
    /// once, install the [`MlCheckpoint`], publish the single selector
    /// covering the whole set, then advance every lane's boundary.
    fn checkpoint(&mut self, active: usize, rt: &prep_pmem::PmemRuntime) {
        const SITE: &str = "MlPersistenceTask::checkpoint";
        let lane_count = self.state.logs.len();
        let region = self.state.psan.replicas[active];
        let rep = &self.replicas[active];
        let full_bytes: u64 = rep.lanes.iter().map(|l| l.approx_bytes()).sum();
        match self.flush_strategy {
            FlushStrategy::Wbinvd => {
                rt.trace_store(region.base, full_bytes, SITE);
                rt.wbinvd(full_bytes);
            }
            // DirtyLines falls back to the whole-set range flush here
            // (module docs).
            FlushStrategy::RangeFlush | FlushStrategy::DirtyLines => {
                rt.trace_store(region.base, full_bytes, SITE);
                rt.flush_range(region.base, full_bytes, SITE);
            }
        }
        rt.sfence();
        rt.count_checkpoint(full_bytes);
        if rt.crash_sim_enabled() {
            self.images[active].install_snapshot(
                rt,
                MlCheckpoint {
                    lanes: rep.lanes.iter().map(|l| l.clone_object()).collect(),
                    tails: rep.tails.clone(),
                },
                rep.tails.iter().sum(),
                full_bytes,
            );
        }

        // Swap active/stable and persist the selector BEFORE raising any
        // boundary (same ordering argument as the single-log thread). The
        // one publish covers every lane of the set: recovery trusting the
        // selector trusts the whole cut vector at once.
        let new_active = 1 - active as u64;
        // ord: Release publishes the checkpoint written above before the
        // selector that names it becomes visible.
        self.state.p_active.store(new_active, Ordering::Release);
        rt.publish_clflush(
            self.state.psan.p_active_addr,
            std::mem::size_of::<u64>() as u64,
            &[(region.base, region.len)],
            PublishTag::CheckpointMarker,
            "MlPersistenceTask::swap",
        );
        self.state.p_active_cell.record(rt, new_active);

        for l in 0..lane_count {
            let pl = &self.state.logs[l];
            pl.durable_tail
                // ord: AcqRel — Release publishes the checkpoint behind the
                // watermark to durable_watermark()'s Acquire readers;
                // Acquire keeps the max monotone.
                .fetch_max(self.replicas[active].tails[l], Ordering::AcqRel);
            let new_boundary = self.replicas[active].tails[l] + self.epsilon;
            // ord: Release — reserve_admitted's Acquire must see the
            // durable checkpoint this boundary is sized against.
            pl.flush_boundary.store(new_boundary, Ordering::Release);
            if self.state.durability == DurabilityLevel::Durable {
                let min_tail = self.replicas[0].tails[l].min(self.replicas[1].tails[l]);
                pl.log_image.retain_from(rt, min_tail);
            }
        }
    }
}

/// Spawns the multi-log persistence thread; it exits when `state.stop` is
/// raised.
pub(crate) fn spawn_ml_persistence_thread<T: SequentialObject>(
    task: MlPersistenceTask<T>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("prep-ml-persistence".into())
        .spawn(move || task.run())
        .expect("failed to spawn multi-log persistence thread")
}
