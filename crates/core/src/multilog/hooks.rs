//! Per-log persistence state for the multi-log construction.
//!
//! [`MlHookState`] is the multi-log analog of `hooks::HookState`: the same
//! flush-boundary gate, persisted-`completedTail` cell, and NVM log image —
//! but **vectored per log**, plus a single joint checkpoint selector
//! (`p_activePReplica`) shared by every lane. The per-log pieces make each
//! log's persistence batching independent (combiners on different logs
//! never touch each other's boundary or image); the single selector is
//! what makes the checkpoint a *cut vector*: one durable 8-byte publish
//! covers every lane's checkpointed bytes at once, so recovery never sees
//! lane A's checkpoint paired with a different epoch of lane B's.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use prep_pmem::psan::{PublishTag, Region};
use prep_pmem::{LogImage, PersistentCell, PmemRuntime};

use prep_nr::MlOp;

use crate::config::DurabilityLevel;

/// Hard cap on logs per construction: psan region labels are static, and
/// practical CNR deployments use a handful of logs (NrOS uses one per NUMA
/// node).
pub const MAX_LOGS: usize = 8;

const LOG_LABELS: [&str; MAX_LOGS] = [
    "mlLog0", "mlLog1", "mlLog2", "mlLog3", "mlLog4", "mlLog5", "mlLog6", "mlLog7",
];
const CT_LABELS: [&str; MAX_LOGS] = [
    "mlCompletedTail0",
    "mlCompletedTail1",
    "mlCompletedTail2",
    "mlCompletedTail3",
    "mlCompletedTail4",
    "mlCompletedTail5",
    "mlCompletedTail6",
    "mlCompletedTail7",
];

/// Logical NVM addresses of everything the multi-log construction
/// persists: one log region and one `completedTail` cell **per log**, one
/// joint selector, and one whole-lane-set region per persistent replica.
pub(crate) struct MlPsanLayout {
    /// Base of each log's logical address space.
    pub(crate) log_bases: Vec<u64>,
    /// Each log's `d_completedTail` cell.
    pub(crate) ct_addrs: Vec<u64>,
    /// The joint `p_activePReplica` selector cell.
    pub(crate) p_active_addr: u64,
    /// One region per persistent replica, covering all of its lanes.
    pub(crate) replicas: [Region; 2],
}

impl MlPsanLayout {
    fn new(rt: &PmemRuntime, logs: usize) -> Self {
        MlPsanLayout {
            log_bases: (0..logs)
                .map(|l| rt.psan_region(LOG_LABELS[l], 1 << 40).base)
                .collect(),
            ct_addrs: (0..logs)
                .map(|l| rt.psan_region(CT_LABELS[l], 8).base)
                .collect(),
            p_active_addr: rt.psan_region("mlPActivePReplica", 8).base,
            replicas: [
                rt.psan_region("mlPReplica0", 1 << 40),
                rt.psan_region("mlPReplica1", 1 << 40),
            ],
        }
    }
}

/// Per-log persistence state (see module docs).
pub(crate) struct PerLog<O: Clone> {
    /// Flush-boundary gate for this log's reservations (Algorithm 4, per
    /// log): reservations stall once the log runs ε past its last
    /// checkpoint, which is what keeps the per-log loss ≤ ε + β − 1 and
    /// the combined loss ≤ L·(ε + β − 1).
    pub(crate) flush_boundary: CachePadded<AtomicU64>,
    /// Volatile mirror of each persistent replica's localTail *in this
    /// log* (indexed like `p_active`).
    pub(crate) p_tails: [CachePadded<AtomicU64>; 2],
    /// Largest completedTail of this log known durable (durable mode).
    pub(crate) persisted_ct: CachePadded<AtomicU64>,
    /// This log's tail in the latest *published* (selector-durable) joint
    /// checkpoint — the per-log crash-survivability watermark.
    pub(crate) durable_tail: CachePadded<AtomicU64>,
    /// NVM image of this log's `d_completedTail` (durable mode).
    pub(crate) ct_cell: PersistentCell<u64>,
    /// NVM image of this log's persisted entries (durable mode).
    pub(crate) log_image: LogImage<MlOp<O>>,
}

/// Shared persistence state for a [`crate::MultiLogUc`]: one [`PerLog`]
/// per log plus the joint checkpoint selector.
pub(crate) struct MlHookState<O: Clone> {
    pub(crate) rt: Arc<PmemRuntime>,
    pub(crate) durability: DurabilityLevel,
    pub(crate) psan: MlPsanLayout,
    pub(crate) logs: Vec<PerLog<O>>,
    /// Volatile mirror of which persistent replica set is active (0 or 1).
    pub(crate) p_active: CachePadded<AtomicU64>,
    /// NVM image of the joint selector.
    pub(crate) p_active_cell: PersistentCell<u64>,
    /// Shutdown flag for the persistence thread and the reserve gates.
    pub(crate) stop: AtomicBool,
}

impl<O: Clone> MlHookState<O> {
    pub(crate) fn new(
        rt: Arc<PmemRuntime>,
        durability: DurabilityLevel,
        epsilon: u64,
        logs: usize,
    ) -> Arc<Self> {
        assert!(
            (1..=MAX_LOGS).contains(&logs),
            "log count {logs} out of range 1..={MAX_LOGS}"
        );
        let psan = MlPsanLayout::new(&rt, logs);
        Arc::new(MlHookState {
            rt,
            durability,
            psan,
            logs: (0..logs)
                .map(|_| PerLog {
                    flush_boundary: CachePadded::new(AtomicU64::new(epsilon)),
                    p_tails: [
                        CachePadded::new(AtomicU64::new(0)),
                        CachePadded::new(AtomicU64::new(0)),
                    ],
                    persisted_ct: CachePadded::new(AtomicU64::new(0)),
                    durable_tail: CachePadded::new(AtomicU64::new(0)),
                    ct_cell: PersistentCell::new(0),
                    log_image: LogImage::new(),
                })
                .collect(),
            p_active: CachePadded::new(AtomicU64::new(0)),
            p_active_cell: PersistentCell::new(0),
            stop: AtomicBool::new(false),
        })
    }

    /// Bytes one log entry occupies in the packed NVM log layout (payload +
    /// emptyBit).
    #[inline]
    pub(crate) fn entry_bytes() -> u64 {
        std::mem::size_of::<MlOp<O>>() as u64 + 1
    }

    /// Logical NVM address of log `l`, entry `idx`'s first payload byte.
    #[inline]
    fn payload_addr(&self, l: usize, idx: u64) -> u64 {
        self.psan.log_bases[l] + idx * Self::entry_bytes()
    }

    /// Logical NVM address of log `l`, entry `idx`'s emptyBit.
    #[inline]
    fn empty_bit_addr(&self, l: usize, idx: u64) -> u64 {
        self.psan.log_bases[l] + (idx + 1) * Self::entry_bytes() - 1
    }

    /// One async flush per distinct cacheline spanned by entries
    /// `[from, to)` of log `l`'s packed NVM layout.
    fn flush_entry_span(&self, l: usize, from: u64, to: u64, site: &'static str) {
        let eb = Self::entry_bytes();
        let base = self.psan.log_bases[l];
        let first = (base + from * eb) / 64;
        let last = (base + to * eb).div_ceil(64).max(first + 1);
        for line in first..last {
            // lint:allow(persist-hook): span-flush helper — every caller
            // traces the stores it persists before invoking this; tracing
            // again here would double-count.
            self.rt.clflushopt_at(line * 64, site);
        }
    }

    /// The per-log reservation gate (Algorithm 4, applied per log): admit
    /// while the reservation stays below this log's flush boundary; always
    /// admit once shutdown has begun so drains cannot wedge.
    pub(crate) fn reserve_admitted(&self, l: usize, tail: u64) -> bool {
        // ord: Acquire pairs with the persistence thread's boundary Release
        // — admitting tail t implies we saw the checkpoint that justified
        // boundary > t.
        tail < self.logs[l].flush_boundary.load(Ordering::Acquire)
            // ord: Acquire pairs with shutdown's stop Release.
            || self.stop.load(Ordering::Acquire)
    }

    /// Durable mode: flush log `l`'s payload bytes for `range` and fence
    /// once for the batch (§4.1's write-all / flush-spanned-lines / single
    /// fence scheme, now per log).
    pub(crate) fn persist_batch_payload(&self, l: usize, range: Range<u64>) {
        if self.durability != DurabilityLevel::Durable || range.is_empty() {
            return;
        }
        const SITE: &str = "MlHookState::persist_batch_payload";
        let eb = Self::entry_bytes();
        self.rt.trace_store(
            self.payload_addr(l, range.start),
            (range.end - range.start) * eb,
            SITE,
        );
        self.flush_entry_span(l, range.start, range.end, SITE);
        self.rt.sfence();
    }

    /// Durable mode: publish the batch's emptyBit image (flush each
    /// distinct emptyBit line once, fence) and copy the ops into this
    /// log's durable image. Runs **before** the volatile publish — an
    /// entry must not become visible to other combiners (who can cover it
    /// with a durably-published completedTail) until its image is fenced.
    ///
    /// For cross-log operations this ordering carries the atomicity
    /// argument one step further: the submitter persists its entry in
    /// *every* log before publishing in *any* log, so a multi-key op that
    /// is durable in one log is always at least completable from the
    /// others' images (see `multilog::recovery`).
    pub(crate) fn persist_batch_published(&self, l: usize, range: Range<u64>, ops: &[MlOp<O>]) {
        if self.durability != DurabilityLevel::Durable || range.is_empty() {
            return;
        }
        debug_assert_eq!((range.end - range.start) as usize, ops.len());
        const SITE: &str = "MlHookState::persist_batch_published";
        let eb = Self::entry_bytes();
        for idx in range.clone() {
            self.rt.trace_publish(
                self.empty_bit_addr(l, idx),
                1,
                &[(self.payload_addr(l, idx), eb - 1)],
                PublishTag::LogEntry,
                SITE,
            );
        }
        let mut last_line = u64::MAX;
        for idx in range.clone() {
            let line = self.empty_bit_addr(l, idx) / 64;
            if line != last_line {
                self.rt.clflushopt_at(line * 64, SITE);
                last_line = line;
            }
        }
        self.rt.sfence();
        for (off, op) in ops.iter().enumerate() {
            self.logs[l]
                .log_image
                .persist_entry(&self.rt, range.start + off as u64, op.clone());
        }
    }

    /// Durable mode: make log `l`'s `completedTail = ct` durable (§5.2
    /// flush-reduction protocol, per log).
    pub(crate) fn ensure_ct_durable(&self, l: usize, ct: u64) {
        if self.durability != DurabilityLevel::Durable {
            return;
        }
        let pl = &self.logs[l];
        // ord: Acquire pairs with the AcqRel fetch_max below — a covering
        // value implies the covering publish_clflush happened-before us.
        if pl.persisted_ct.load(Ordering::Acquire) >= ct {
            return;
        }
        // Store + CLFLUSH as one atomic persist: this log's completedTail
        // publishes every byte of this log below it.
        self.rt.publish_clflush(
            self.psan.ct_addrs[l],
            std::mem::size_of::<u64>() as u64,
            &[(self.psan.log_bases[l], ct * Self::entry_bytes())],
            PublishTag::CompletedTail,
            "MlHookState::ensure_ct_durable",
        );
        pl.ct_cell.record_max(&self.rt, ct);
        // ord: AcqRel — Release publishes our flush to the skip check
        // above; Acquire keeps competing maxima ordered.
        pl.persisted_ct.fetch_max(ct, Ordering::AcqRel);
    }

    /// Per-log crash-survivability watermark: the log prefix guaranteed to
    /// survive a crash taken now (latest published joint checkpoint, plus
    /// the persisted completedTail in durable mode).
    pub(crate) fn durable_watermark(&self, l: usize) -> u64 {
        let pl = &self.logs[l];
        // ord: Acquire pairs with the persistence thread's AcqRel
        // fetch_max after the selector persist.
        let ckpt = pl.durable_tail.load(Ordering::Acquire);
        match self.durability {
            // ord: Acquire pairs with ensure_ct_durable's AcqRel fetch_max.
            DurabilityLevel::Durable => ckpt.max(pl.persisted_ct.load(Ordering::Acquire)),
            DurabilityLevel::Buffered => ckpt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(level: DurabilityLevel) -> Arc<MlHookState<u64>> {
        MlHookState::new(PmemRuntime::for_crash_tests(), level, 16, 3)
    }

    #[test]
    fn per_log_gates_are_independent() {
        let st = mk(DurabilityLevel::Buffered);
        assert!(st.reserve_admitted(0, 15));
        assert!(!st.reserve_admitted(0, 16));
        st.logs[2].flush_boundary.store(64, Ordering::Release);
        assert!(st.reserve_admitted(2, 40));
        assert!(!st.reserve_admitted(0, 16), "log 0's gate unchanged");
        st.stop.store(true, Ordering::Release);
        assert!(st.reserve_admitted(0, 1 << 40), "shutdown admits all");
    }

    fn singles(n: u64) -> Vec<MlOp<u64>> {
        (0..n).map(|i| MlOp::Single { worker: 0, op: i }).collect()
    }

    #[test]
    fn buffered_skips_log_persistence_per_log() {
        let st = mk(DurabilityLevel::Buffered);
        st.persist_batch_payload(1, 0..4);
        st.persist_batch_published(1, 0..4, &singles(4));
        st.ensure_ct_durable(1, 4);
        let s = st.rt.stats().snapshot();
        assert_eq!(s.total_flushes() + s.sfence, 0);
        assert!(st.logs[1].log_image.is_empty());
    }

    #[test]
    fn durable_persists_only_the_targeted_log() {
        let st = mk(DurabilityLevel::Durable);
        let ops = singles(2);
        st.persist_batch_payload(2, 0..2);
        st.persist_batch_published(2, 0..2, &ops);
        st.ensure_ct_durable(2, 2);
        assert_eq!(st.logs[2].log_image.len(), 2);
        assert!(st.logs[0].log_image.is_empty());
        assert!(st.logs[1].log_image.is_empty());
        assert_eq!(st.logs[2].ct_cell.read_image(), 2);
        assert_eq!(st.logs[0].ct_cell.read_image(), 0);
        // Flush-reduction: a covered ct re-persist is skipped.
        let flushes = st.rt.stats().snapshot().clflush;
        st.ensure_ct_durable(2, 1);
        assert_eq!(st.rt.stats().snapshot().clflush, flushes);
    }

    #[test]
    fn watermark_combines_checkpoint_and_ct_in_durable_mode() {
        let st = mk(DurabilityLevel::Durable);
        st.logs[0].durable_tail.store(4, Ordering::Release);
        st.logs[0].persisted_ct.store(9, Ordering::Release);
        assert_eq!(st.durable_watermark(0), 9);
        let st = mk(DurabilityLevel::Buffered);
        st.logs[0].durable_tail.store(4, Ordering::Release);
        st.logs[0].persisted_ct.store(9, Ordering::Release);
        assert_eq!(st.durable_watermark(0), 4, "buffered trusts only the cut");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn log_count_capped() {
        MlHookState::<u64>::new(
            PmemRuntime::for_crash_tests(),
            DurabilityLevel::Buffered,
            16,
            MAX_LOGS + 1,
        );
    }
}
