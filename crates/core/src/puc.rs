//! The user-facing PREP-UC object.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use prep_nr::{NodeReplicated, ThreadToken};
use prep_pmem::{PmemRuntime, PmemStatsSnapshot, ReplicaImage};
use prep_seqds::SequentialObject;
use prep_topology::ThreadAssignment;

use crate::config::PrepConfig;
use crate::hooks::{HookState, PrepHooks};
use crate::persistence::{spawn_persistence_thread, PReplica, PersistenceTask};

/// The volatile variant used as a baseline in Figure 1: PREP with all
/// persistence removed is exactly NR-UC.
pub type PrepVolatile<T> = NodeReplicated<T>;

/// The inner node-replicated construction with PREP's hooks installed.
pub(crate) type NrInner<T> = NodeReplicated<T, PrepHooks<<T as SequentialObject>::Op>>;

/// A replicated persistent universal construction (PREP-Buffered or
/// PREP-Durable, per [`PrepConfig::durability`]).
///
/// Construction spawns the persistence thread; dropping the `PrepUc` stops
/// and joins it. Worker threads interact through
/// [`PrepUc::register`]/[`PrepUc::execute`] — the paper's
/// `ExecuteConcurrent` interface, identical to NR-UC's (§4.1 "PREP-UC
/// Interface").
pub struct PrepUc<T: SequentialObject> {
    nr: Arc<NrInner<T>>,
    state: Arc<HookState<T::Op>>,
    images: Arc<[ReplicaImage<T>; 2]>,
    config: PrepConfig,
    beta: u64,
    persistence: Option<std::thread::JoinHandle<()>>,
}

impl<T: SequentialObject> PrepUc<T> {
    /// Builds a PREP-UC over `obj`.
    ///
    /// `obj` becomes the initial state of every replica: the N volatile
    /// replicas and both persistence-only replicas (whose NVM images start
    /// consistent at localTail 0, like a freshly initialized persistent
    /// memory file).
    ///
    /// # Panics
    /// Panics if the configuration violates `ε ≤ LOG_SIZE − β − 1` (§5.1)
    /// or the log is too small for the assignment.
    pub fn new(obj: T, assignment: ThreadAssignment, config: PrepConfig) -> Self {
        let beta = assignment.beta() as u64;
        config.validate(beta);

        let state = HookState::new(
            Arc::clone(&config.runtime),
            config.durability,
            config.epsilon,
            config.fence_per_entry,
            config.psan_fault,
        );
        let hooks = PrepHooks {
            state: Arc::clone(&state),
        };
        let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
            obj.clone_object(),
            assignment,
            config.log_size,
            hooks,
            config.fairness,
        ));
        let images = Arc::new([
            ReplicaImage::new(obj.clone_object()),
            ReplicaImage::new(obj.clone_object()),
        ]);
        let p_replicas = [
            PReplica {
                ds: obj.clone_object(),
                local_tail: 0,
                pending: Vec::new(),
            },
            PReplica {
                ds: obj,
                local_tail: 0,
                pending: Vec::new(),
            },
        ];
        let persistence = spawn_persistence_thread(PersistenceTask {
            nr: Arc::clone(&nr),
            state: Arc::clone(&state),
            images: Arc::clone(&images),
            replicas: p_replicas,
            epsilon: config.epsilon,
            allocator_swap: config.allocator_swap,
            flush_strategy: config.flush_strategy,
        });
        PrepUc {
            nr,
            state,
            images,
            config,
            beta,
            persistence: Some(persistence),
        }
    }

    /// Registers worker `worker`; see [`NodeReplicated::register`].
    pub fn register(&self, worker: usize) -> ThreadToken {
        self.nr.register(worker)
    }

    /// The paper's `ExecuteConcurrent`: runs `op` with (buffered) durable
    /// linearizable semantics and returns its response.
    pub fn execute(&self, token: &ThreadToken, op: T::Op) -> T::Resp {
        self.nr.execute(token, op)
    }

    /// Observes a volatile replica's state, up to date with every completed
    /// update (test/diagnostic API).
    pub fn with_replica<R>(&self, node: usize, f: impl FnOnce(&T) -> R) -> R {
        self.nr.with_replica(node, f)
    }

    /// Current `completedTail`.
    pub fn completed_tail(&self) -> u64 {
        self.nr.completed_tail()
    }

    /// Read-only operations that missed the zero-contention read fast path
    /// (their replica was behind `completedTail` at invocation), summed over
    /// replicas. Diagnostic for the distributed-lock read path.
    pub fn read_slow_paths(&self) -> u64 {
        self.nr.read_slow_paths()
    }

    /// Validated optimistic (lock-free) fast-path reads — zero atomic RMWs,
    /// zero shared-cacheline stores each — summed over replicas. Nonzero
    /// only under the optimistic-capable fairness modes.
    pub fn read_fast_optimistic(&self) -> u64 {
        self.nr.read_fast_optimistic()
    }

    /// Optimistic reads that failed seqlock validation (a combiner
    /// overlapped the lock-free read) and fell back toward the slot path,
    /// summed over replicas.
    pub fn read_validation_failures(&self) -> u64 {
        self.nr.read_validation_failures()
    }

    /// The construction's configuration.
    pub fn config(&self) -> &PrepConfig {
        &self.config
    }

    /// β for this instance (threads on the most-loaded node).
    pub fn beta(&self) -> u64 {
        self.beta
    }

    /// Worst-case completed-update loss per crash: `ε + β − 1` buffered,
    /// 0 durable (§5.1 "Worst Case Execution").
    pub fn loss_bound(&self) -> u64 {
        self.config.loss_bound(self.beta)
    }

    /// The persistence runtime (stats, crash capture).
    pub fn runtime(&self) -> &Arc<PmemRuntime> {
        &self.config.runtime
    }

    /// Snapshot of the persistence-operation counters.
    pub fn stats(&self) -> PmemStatsSnapshot {
        self.config.runtime.stats().snapshot()
    }

    /// The underlying node-replicated construction (advanced/diagnostic).
    pub fn inner(&self) -> &Arc<NrInner<T>> {
        &self.nr
    }

    pub(crate) fn hook_state(&self) -> &Arc<HookState<T::Op>> {
        &self.state
    }

    pub(crate) fn replica_image(&self, idx: usize) -> &ReplicaImage<T> {
        &self.images[idx]
    }

    /// Which persistent replica is currently active (0 or 1), volatile view.
    pub fn active_persistent_replica(&self) -> u64 {
        // ord: Acquire pairs with the persistence thread's swap Release —
        // the named checkpoint is durable by the time callers see its id.
        self.state.p_active.load(Ordering::Acquire)
    }

    /// Current flush boundary (diagnostic).
    pub fn flush_boundary(&self) -> u64 {
        // ord: Acquire pairs with the boundary's Release stores; diagnostic
        // readers see a boundary consistent with the checkpoint behind it.
        self.state.flush_boundary.load(Ordering::Acquire)
    }

    /// Largest log index `w` such that every completed operation at index
    /// `< w` survives a crash taken *now*.
    ///
    /// In buffered mode this is the latest *published* checkpoint's tail
    /// (the stable replica at the moment its selector was persisted) —
    /// deliberately not `p_tails`, which track applied-but-unflushed state
    /// on the active replica. In durable mode the persisted `completedTail`
    /// also covers the log suffix, so the watermark is the max of the two.
    /// Service layers release durable acks once this passes an operation's
    /// covering `completedTail` (§2.2 buffered durable linearizability:
    /// this is the construction's sync point).
    pub fn durable_watermark(&self) -> u64 {
        // ord: Acquire pairs with the persistence thread's AcqRel fetch_max
        // after the selector persist — watermark w implies the checkpoint
        // covering [0, w) is durable.
        let ckpt = self.state.durable_tail.load(Ordering::Acquire);
        match self.config.durability {
            crate::config::DurabilityLevel::Durable => {
                // ord: Acquire pairs with ensure_completed_tail_durable's
                // AcqRel fetch_max — ct durable implies its log prefix is too.
                ckpt.max(self.state.persisted_ct.load(Ordering::Acquire))
            }
            crate::config::DurabilityLevel::Buffered => ckpt,
        }
    }

    /// Asks the persistence thread to checkpoint *now* instead of waiting
    /// for the flush boundary to be reached naturally (up to ε more ops).
    ///
    /// Lowers the flush boundary to the active replica's applied tail — the
    /// same mechanism `help_persistent_straggler` uses, and safe for the
    /// same reason: persisting earlier than ε only tightens the loss bound.
    /// No-op when the watermark already covers `completedTail`. Durable-ack
    /// release points call this while waiting so a lightly loaded server
    /// does not hold durable responses for a full ε window.
    pub fn nudge_checkpoint(&self) {
        if self.durable_watermark() >= self.completed_tail() {
            return;
        }
        // ord: Acquire pairs with the persistence thread's swap Release so
        // the tail read below belongs to the replica we think is active.
        let active = self.state.p_active.load(Ordering::Acquire) as usize;
        // ord: Acquire pairs with the tail's Release store.
        let target = self.state.p_tails[active].load(Ordering::Acquire).max(1);
        self.state
            .flush_boundary
            // ord: AcqRel — Release so the persistence thread's Acquire of
            // the lowered boundary sees the state that motivated it;
            // Acquire orders racing lowerings (fetch_min keeps only the
            // tightest).
            .fetch_min(target, Ordering::AcqRel);
    }

    /// Blocks until every operation completed *before this call* is crash
    /// survivable (`durable_watermark() >= completedTail`), nudging the
    /// persistence thread along.
    ///
    /// Intended for drain/shutdown paths after workers have stopped
    /// submitting; with concurrent writers it chases a moving tail and
    /// returns as soon as it observes a watermark covering some recent
    /// `completedTail` read.
    pub fn quiesce_persistence(&self) {
        let mut w = prep_sync::Waiter::new();
        loop {
            let ct = self.completed_tail();
            if self.durable_watermark() >= ct {
                return;
            }
            self.nudge_checkpoint();
            w.wait();
        }
    }

    /// The persistent replicas' localTails (volatile mirror).
    pub fn persistent_tails(&self) -> [u64; 2] {
        [
            // ord: Acquire pairs with the persistence thread's tail Release
            // stores; tail t implies entries below t were applied.
            self.state.p_tails[0].load(Ordering::Acquire),
            // ord: see above.
            self.state.p_tails[1].load(Ordering::Acquire),
        ]
    }
}

impl<T: SequentialObject> Drop for PrepUc<T> {
    fn drop(&mut self) {
        // ord: Release pairs with the persistence thread's stop Acquire —
        // everything this instance wrote is visible to its final pass.
        self.state.stop.store(true, Ordering::Release);
        if let Some(h) = self.persistence.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DurabilityLevel;
    use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
    use prep_seqds::recorder::{Recorder, RecorderOp};
    use prep_topology::Topology;

    fn cfg(level: DurabilityLevel) -> PrepConfig {
        PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(32)
            .with_runtime(PmemRuntime::for_crash_tests())
    }

    #[test]
    fn single_threaded_buffered_map_roundtrip() {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(HashMap::new(), asg, cfg(DurabilityLevel::Buffered));
        let t = prep.register(0);
        for k in 0..50u64 {
            prep.execute(
                &t,
                MapOp::Insert {
                    key: k,
                    value: k * 3,
                },
            );
        }
        for k in 0..50u64 {
            assert_eq!(
                prep.execute(&t, MapOp::Get { key: k }),
                MapResp::Value(Some(k * 3))
            );
        }
        assert_eq!(prep.execute(&t, MapOp::Len), MapResp::Len(50));
    }

    #[test]
    fn multi_threaded_durable_updates_complete() {
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 200;
        let asg = Topology::small().assign_workers(THREADS);
        let prep = Arc::new(PrepUc::new(
            Recorder::new(),
            asg,
            cfg(DurabilityLevel::Durable),
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let prep = Arc::clone(&prep);
                std::thread::spawn(move || {
                    let t = prep.register(w);
                    for i in 0..PER_THREAD {
                        prep.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(prep.completed_tail(), THREADS as u64 * PER_THREAD);
        prep.with_replica(0, |r| {
            assert_eq!(r.count(), THREADS as u64 * PER_THREAD);
        });
        // Durable mode flushed log entries and the completed tail. Both
        // persist phases flush per spanned cacheline (emptyBit flushes are
        // coalesced per distinct line), so the floor is the packed log
        // footprint in lines, not one flush per entry.
        let s = prep.stats();
        let entry_bytes = std::mem::size_of::<RecorderOp>() as u64 + 1;
        let min_lines = THREADS as u64 * PER_THREAD * entry_bytes / 64;
        assert!(
            s.clflushopt >= min_lines,
            "entry flushes: {} < {min_lines}",
            s.clflushopt
        );
        assert!(s.clflush > 0, "completedTail flushes");
        assert!(s.sfence > 0);
    }

    #[test]
    fn loss_bound_reports_config_values() {
        let asg = Topology::small().assign_workers(3); // β = 2 (2 cores/node)
        let prep = PrepUc::new(
            Recorder::new(),
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(10),
        );
        assert_eq!(prep.beta(), 2);
        assert_eq!(prep.loss_bound(), 11); // ε + β − 1
    }

    #[test]
    fn drop_stops_persistence_thread_quickly() {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(Recorder::new(), asg, cfg(DurabilityLevel::Buffered));
        let t0 = std::time::Instant::now();
        drop(prep);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "persistence thread failed to stop"
        );
    }

    #[test]
    fn quiesce_covers_all_completed_ops_buffered() {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(
            HashMap::new(),
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(64),
        );
        let t = prep.register(0);
        // Fewer ops than ε: without a nudge the persistence thread would
        // never checkpoint (boundary = 64 is unreachable at tail 10).
        for k in 0..10u64 {
            prep.execute(&t, MapOp::Insert { key: k, value: k });
        }
        assert_eq!(prep.completed_tail(), 10);
        prep.quiesce_persistence();
        assert!(
            prep.durable_watermark() >= 10,
            "watermark {} must cover completedTail 10",
            prep.durable_watermark()
        );
    }

    #[test]
    fn durable_mode_watermark_tracks_completed_tail() {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(HashMap::new(), asg, cfg(DurabilityLevel::Durable));
        let t = prep.register(0);
        for k in 0..20u64 {
            prep.execute(&t, MapOp::Insert { key: k, value: k });
        }
        // Durable mode persists completedTail before execute returns, so
        // the watermark needs no quiesce to cover it.
        assert!(prep.durable_watermark() >= 20);
    }

    #[test]
    fn watermark_never_exceeds_completed_tail() {
        let asg = Topology::small().assign_workers(2);
        let prep = Arc::new(PrepUc::new(
            Recorder::new(),
            asg,
            cfg(DurabilityLevel::Buffered).with_epsilon(4),
        ));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let prep = Arc::clone(&prep);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let t = prep.register(0);
                for i in 0..400u64 {
                    prep.execute(&t, RecorderOp::Record(i));
                }
                stop.store(true, Ordering::Release);
            })
        };
        // Under a racing writer the watermark must stay a *lower* bound on
        // durability: it may lag completedTail but never pass it.
        while !stop.load(Ordering::Acquire) {
            let wm = prep.durable_watermark();
            let ct = prep.completed_tail();
            assert!(wm <= ct, "watermark {wm} overtook completedTail {ct}");
        }
        writer.join().unwrap();
        prep.quiesce_persistence();
        assert!(prep.durable_watermark() >= 400);
    }

    #[test]
    fn log_wrap_with_persistence_backpressure() {
        // Tiny log + tiny ε: the gate and the persistence thread interact
        // constantly; everything must still complete.
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 300;
        let asg = Topology::small().assign_workers(THREADS);
        let prep = Arc::new(PrepUc::new(
            Recorder::new(),
            asg,
            PrepConfig::new(DurabilityLevel::Buffered)
                .with_log_size(64)
                .with_epsilon(8)
                .with_runtime(PmemRuntime::for_crash_tests()),
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let prep = Arc::clone(&prep);
                std::thread::spawn(move || {
                    let t = prep.register(w);
                    for i in 0..PER_THREAD {
                        prep.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(prep.completed_tail(), THREADS as u64 * PER_THREAD);
        assert!(
            prep.runtime().stats().snapshot_count() > 5,
            "tiny ε must force many persist cycles"
        );
    }
}
