//! PREP's implementation of the NR persistence hook points.
//!
//! [`HookState`] is the shared persistence state: the flush boundary, the
//! persistent replicas' localTails (mirrored as atomics for the logMin
//! scan), the active-replica selector, and the NVM images of the UC-managed
//! persistent variables (log entries, `completedTail`, `p_activePReplica`).
//! It is shared between the worker-side hooks and the persistence thread.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use prep_nr::NrHooks;
use prep_pmem::{LogImage, PersistentCell, PmemRuntime};

use crate::config::DurabilityLevel;

/// Shared persistence state (see module docs).
pub(crate) struct HookState<O: Clone> {
    pub(crate) rt: Arc<PmemRuntime>,
    pub(crate) durability: DurabilityLevel,
    pub(crate) fence_per_entry: bool,
    /// Monotone-except-for-helping flush boundary (Algorithm 2/4).
    pub(crate) flush_boundary: CachePadded<AtomicU64>,
    /// Volatile mirror of the persistent replicas' localTails, read by the
    /// logMin scan.
    pub(crate) p_tails: [CachePadded<AtomicU64>; 2],
    /// Volatile mirror of which persistent replica is active (0 or 1).
    pub(crate) p_active: CachePadded<AtomicU64>,
    /// Largest completedTail known to be durable (durable mode).
    pub(crate) persisted_ct: CachePadded<AtomicU64>,
    /// Shutdown flag for the persistence thread and the reserve gate.
    pub(crate) stop: AtomicBool,
    /// NVM image of `d_completedTail` (durable mode).
    pub(crate) ct_cell: PersistentCell<u64>,
    /// NVM image of `p_activePReplica`.
    pub(crate) p_active_cell: PersistentCell<u64>,
    /// NVM image of the persisted log entries (durable mode).
    pub(crate) log_image: LogImage<O>,
}

impl<O: Clone> HookState<O> {
    pub(crate) fn new(
        rt: Arc<PmemRuntime>,
        durability: DurabilityLevel,
        epsilon: u64,
        fence_per_entry: bool,
    ) -> Arc<Self> {
        Arc::new(HookState {
            rt,
            durability,
            fence_per_entry,
            flush_boundary: CachePadded::new(AtomicU64::new(epsilon)),
            p_tails: [
                CachePadded::new(AtomicU64::new(0)),
                CachePadded::new(AtomicU64::new(0)),
            ],
            p_active: CachePadded::new(AtomicU64::new(0)),
            persisted_ct: CachePadded::new(AtomicU64::new(0)),
            stop: AtomicBool::new(false),
            ct_cell: PersistentCell::new(0),
            p_active_cell: PersistentCell::new(0),
            log_image: LogImage::new(),
        })
    }

    /// Bytes one log entry occupies in the packed NVM log layout (payload +
    /// emptyBit), for flush accounting.
    #[inline]
    fn entry_bytes() -> u64 {
        std::mem::size_of::<O>() as u64 + 1
    }

    /// Distinct cachelines spanned by entries `[from, to)` of the packed
    /// NVM log. Adjacent small entries share lines, so flushing a batch
    /// costs one `CLFLUSHOPT` per *spanned* line — not one per entry.
    #[inline]
    fn span_lines(from: u64, to: u64) -> u64 {
        let eb = Self::entry_bytes();
        ((to * eb).div_ceil(64) - (from * eb) / 64).max(1)
    }
}

/// The [`NrHooks`] implementation PREP plugs into `NodeReplicated`.
pub struct PrepHooks<O: Clone + Send + 'static> {
    pub(crate) state: Arc<HookState<O>>,
}

impl<O: Clone + Send + Sync + 'static> NrHooks<O> for PrepHooks<O> {
    fn reserve_admitted(&self, tail: u64) -> bool {
        // Algorithm 4: refuse while the reservation would pass the flush
        // boundary. Strictly (`tail >= boundary`, not `>`), which is what
        // makes the ε + β − 1 loss bound tight: reservation starts stay
        // ≤ boundary − 1, so at most (boundary − 1) + β entries ever exist
        // beyond the last persisted localTail (≥ boundary − ε).
        //
        // On shutdown the persistence thread no longer advances the
        // boundary; admit rather than hang (loss bounds are only claimed
        // for non-shut-down instances).
        tail < self.state.flush_boundary.load(Ordering::Acquire)
            || self.state.stop.load(Ordering::Acquire)
    }

    fn persist_batch_payload(&self, range: Range<u64>, _ops: &[O]) {
        if self.state.durability != DurabilityLevel::Durable {
            return;
        }
        if range.is_empty() {
            return;
        }
        // §4.1: write all payloads, asynchronously flush each touched line,
        // then a single fence for the whole batch — one CLFLUSHOPT per
        // *distinct line the batch spans*, since adjacent small entries
        // share lines. (The fence-per-entry ablation quantifies what the
        // batching saves; an intervening fence re-dirties shared boundary
        // lines, so there each entry flushes its own span.)
        if self.state.fence_per_entry {
            for idx in range {
                for _ in 0..HookState::<O>::span_lines(idx, idx + 1) {
                    self.state.rt.clflushopt();
                }
                self.state.rt.sfence();
            }
        } else {
            for _ in 0..HookState::<O>::span_lines(range.start, range.end) {
                self.state.rt.clflushopt();
            }
            self.state.rt.sfence();
        }
    }

    fn persist_batch_published(&self, range: Range<u64>, ops: &[O]) {
        if self.state.durability != DurabilityLevel::Durable {
            return;
        }
        // Flush the emptyBit lines and fence again; only after this fence
        // are the entries recoverable, so this is where they enter the
        // crash-store image.
        for _ in range.clone() {
            self.state.rt.clflushopt();
        }
        self.state.rt.sfence();
        for (k, idx) in range.enumerate() {
            self.state
                .log_image
                .persist_entry(&self.state.rt, idx, ops[k].clone());
        }
    }

    fn ensure_completed_tail_durable(&self, ct: u64) {
        if self.state.durability != DurabilityLevel::Durable {
            return;
        }
        // §5.2 flush-reduction protocol: skip the flush if some thread
        // already persisted a covering value; otherwise flush and publish
        // the new durable watermark. `record_max` keeps the NVM image
        // monotone under races between flushers of different values.
        if self.state.persisted_ct.load(Ordering::Acquire) >= ct {
            return;
        }
        self.state.rt.clflush();
        self.state.ct_cell.record_max(&self.state.rt, ct);
        self.state.persisted_ct.fetch_max(ct, Ordering::AcqRel);
    }

    fn persistent_tails(&self) -> Vec<u64> {
        vec![
            self.state.p_tails[0].load(Ordering::Acquire),
            self.state.p_tails[1].load(Ordering::Acquire),
        ]
    }

    fn help_persistent_straggler(&self, idx: usize, low_mark: u64) {
        // Algorithm 3: only the *stable* replica can be a stuck straggler
        // (the active one is being driven forward by the persistence
        // thread). Lower the flush boundary to force an early
        // persist-and-swap so the stable replica becomes active.
        //
        // Deadlock subtlety the paper's pseudocode glosses over: the
        // persist trigger is `flushBoundary <= activeReplica.localTail`,
        // and the active tail cannot pass completedTail — which is *frozen*
        // here (reserves are gated at the boundary and the blocked
        // combiners hold unfinished log entries). Lowering only to
        // `lowMark − 1` can therefore still leave the boundary unreachable.
        // We lower to the active replica's current tail as well, which the
        // persistence thread can always reach; persisting earlier than ε
        // only tightens the loss bound.
        let active = self.state.p_active.load(Ordering::Acquire) as usize;
        if active != idx && self.state.flush_boundary.load(Ordering::Acquire) >= low_mark {
            let active_tail = self.state.p_tails[active].load(Ordering::Acquire);
            let target = low_mark.saturating_sub(1).min(active_tail).max(1);
            self.state.flush_boundary.store(target, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(durability: DurabilityLevel) -> PrepHooks<u64> {
        PrepHooks {
            state: HookState::new(PmemRuntime::for_crash_tests(), durability, 16, false),
        }
    }

    #[test]
    fn fence_per_entry_ablation_fences_each_entry() {
        let h = PrepHooks::<u64> {
            state: HookState::new(
                PmemRuntime::for_crash_tests(),
                DurabilityLevel::Durable,
                16,
                true,
            ),
        };
        h.persist_batch_payload(0..4, &[1, 2, 3, 4]);
        assert_eq!(h.state.rt.stats().snapshot().sfence, 4);
    }

    #[test]
    fn gate_admits_below_boundary_refuses_at_it() {
        let h = mk(DurabilityLevel::Buffered); // ε = boundary = 16
        assert!(h.reserve_admitted(15));
        assert!(!h.reserve_admitted(16), "tail at the boundary must wait");
        assert!(!h.reserve_admitted(17));
        h.state.flush_boundary.store(32, Ordering::Release);
        assert!(h.reserve_admitted(16));
    }

    #[test]
    fn gate_admits_everything_after_stop() {
        let h = mk(DurabilityLevel::Buffered);
        h.state.stop.store(true, Ordering::Release);
        assert!(h.reserve_admitted(1_000_000)); // must not wedge shutdown
    }

    #[test]
    fn buffered_skips_all_log_persistence() {
        let h = mk(DurabilityLevel::Buffered);
        h.persist_batch_payload(0..4, &[1, 2, 3, 4]);
        h.persist_batch_published(0..4, &[1, 2, 3, 4]);
        h.ensure_completed_tail_durable(4);
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.total_flushes(), 0);
        assert_eq!(s.sfence, 0);
        assert!(h.state.log_image.is_empty());
        assert_eq!(h.state.ct_cell.read_image(), 0);
    }

    #[test]
    fn durable_persists_batch_with_one_fence_per_phase() {
        let h = mk(DurabilityLevel::Durable);
        h.persist_batch_payload(0..4, &[1, 2, 3, 4]);
        let s = h.state.rt.stats().snapshot();
        // Four 9-byte entries (u64 payload + emptyBit) span bytes [0, 36):
        // one cacheline, so one coalesced async flush.
        assert_eq!(s.clflushopt, 1, "one async flush per spanned line");
        assert_eq!(s.sfence, 1, "a single fence per batch (§4.1)");
        assert!(
            h.state.log_image.is_empty(),
            "payload-only persistence must not make entries recoverable"
        );
        h.persist_batch_published(0..4, &[1, 2, 3, 4]);
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.sfence, 2);
        assert_eq!(h.state.log_image.len(), 4);
        assert_eq!(
            h.state.log_image.persisted_range(0, 4),
            vec![(0, 1), (1, 2), (2, 3), (3, 4)]
        );
    }

    #[test]
    fn payload_flushes_coalesce_by_spanned_lines() {
        // Entries are 9 bytes; lines hold 64. A batch of 16 entries spans
        // 144 bytes; start offset matters for the line count.
        assert_eq!(HookState::<u64>::span_lines(0, 16), 3); // [0, 144)
        assert_eq!(HookState::<u64>::span_lines(7, 8), 2); // [63, 72) straddles
        assert_eq!(HookState::<u64>::span_lines(6, 8), 2); // [54, 72)
        let h = mk(DurabilityLevel::Durable);
        h.persist_batch_payload(6..8, &[1, 2]);
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.clflushopt, 2);
        assert_eq!(s.sfence, 1);
    }

    #[test]
    fn completed_tail_flushes_are_deduplicated() {
        let h = mk(DurabilityLevel::Durable);
        h.ensure_completed_tail_durable(10);
        h.ensure_completed_tail_durable(10);
        h.ensure_completed_tail_durable(7); // already covered
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.clflush, 1, "covered values must not re-flush");
        assert_eq!(h.state.ct_cell.read_image(), 10);
        h.ensure_completed_tail_durable(20);
        assert_eq!(h.state.ct_cell.read_image(), 20);
        assert_eq!(h.state.rt.stats().snapshot().clflush, 2);
    }

    #[test]
    fn straggler_help_lowers_boundary_only_for_stable_replica() {
        let h = mk(DurabilityLevel::Buffered);
        h.state.flush_boundary.store(100, Ordering::Release);
        // The active replica (0) has applied up to 80.
        h.state.p_tails[0].store(80, Ordering::Release);
        // active = 0 → helping replica 0 (the active one) is a no-op.
        h.help_persistent_straggler(0, 50);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 100);
        // Helping replica 1 (stable) lowers the boundary to
        // min(lowMark − 1, active tail): here lowMark − 1 = 49 binds.
        h.help_persistent_straggler(1, 50);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 49);
        // Already below lowMark → no further lowering.
        h.help_persistent_straggler(1, 60);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 49);
        // When the active replica's tail is below lowMark − 1, the tail
        // binds instead — the persistence thread must be able to reach the
        // boundary (deadlock backstop).
        h.state.flush_boundary.store(100, Ordering::Release);
        h.state.p_tails[0].store(20, Ordering::Release);
        h.help_persistent_straggler(1, 50);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn persistent_tails_mirror_atomics() {
        let h = mk(DurabilityLevel::Buffered);
        h.state.p_tails[0].store(3, Ordering::Release);
        h.state.p_tails[1].store(9, Ordering::Release);
        assert_eq!(h.persistent_tails(), vec![3, 9]);
    }
}
