//! PREP's implementation of the NR persistence hook points.
//!
//! [`HookState`] is the shared persistence state: the flush boundary, the
//! persistent replicas' localTails (mirrored as atomics for the logMin
//! scan), the active-replica selector, and the NVM images of the UC-managed
//! persistent variables (log entries, `completedTail`, `p_activePReplica`).
//! It is shared between the worker-side hooks and the persistence thread.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use prep_nr::NrHooks;
use prep_pmem::psan::{PublishTag, Region};
use prep_pmem::{LogImage, PersistentCell, PmemRuntime};

use crate::config::{DurabilityLevel, PsanFault};

/// Logical NVM addresses of everything this construction persists, used by
/// the persistence-ordering sanitizer (`prep-psan`) to give stores and
/// flushes identity. Allocated unconditionally at construction (regions
/// are just address-space reservations); traced only when the runtime's
/// tracer is enabled.
///
/// Log addressing is by **monotonic log index**, never by recycled
/// physical slot: entry `idx` occupies bytes `[idx·eb, (idx+1)·eb)` with
/// its emptyBit last, where `eb = size_of::<O>() + 1` matches the packed
/// layout `span_lines` charges for. Recycling a slot (logMin) gets a fresh
/// logical address, so laps never alias.
pub(crate) struct PsanLayout {
    /// Base of the log's logical address space.
    pub(crate) log_base: u64,
    /// `d_completedTail`'s cell.
    pub(crate) ct_addr: u64,
    /// `p_activePReplica`'s cell.
    pub(crate) p_active_addr: u64,
    /// One region per persistent replica (the structure's logical dirty
    /// address space maps 1:1 into it).
    pub(crate) replicas: [Region; 2],
}

impl PsanLayout {
    fn new(rt: &PmemRuntime) -> Self {
        PsanLayout {
            log_base: rt.psan_region("log", 1 << 40).base,
            ct_addr: rt.psan_region("completedTail", 8).base,
            p_active_addr: rt.psan_region("pActivePReplica", 8).base,
            replicas: [
                rt.psan_region("pReplica0", 1 << 40),
                rt.psan_region("pReplica1", 1 << 40),
            ],
        }
    }
}

/// Shared persistence state (see module docs).
pub(crate) struct HookState<O: Clone> {
    pub(crate) rt: Arc<PmemRuntime>,
    pub(crate) durability: DurabilityLevel,
    pub(crate) fence_per_entry: bool,
    /// Sanitizer address layout for the UC-managed persistent variables.
    pub(crate) psan: PsanLayout,
    /// Seeded ordering bug for sanitizer-validation tests (always `None`
    /// outside those tests).
    pub(crate) psan_fault: Option<PsanFault>,
    /// Monotone-except-for-helping flush boundary (Algorithm 2/4).
    pub(crate) flush_boundary: CachePadded<AtomicU64>,
    /// Volatile mirror of the persistent replicas' localTails, read by the
    /// logMin scan.
    pub(crate) p_tails: [CachePadded<AtomicU64>; 2],
    /// Volatile mirror of which persistent replica is active (0 or 1).
    pub(crate) p_active: CachePadded<AtomicU64>,
    /// Largest completedTail known to be durable (durable mode).
    pub(crate) persisted_ct: CachePadded<AtomicU64>,
    /// Largest localTail covered by a *published* checkpoint (the stable
    /// replica's tail at the moment its selector became durable). Unlike
    /// `p_tails` — which track *applied* state and can run ahead of any
    /// checkpoint on the active replica — this only advances after the
    /// swap, so it is a crash-survivability watermark in both modes.
    pub(crate) durable_tail: CachePadded<AtomicU64>,
    /// Shutdown flag for the persistence thread and the reserve gate.
    pub(crate) stop: AtomicBool,
    /// NVM image of `d_completedTail` (durable mode).
    pub(crate) ct_cell: PersistentCell<u64>,
    /// NVM image of `p_activePReplica`.
    pub(crate) p_active_cell: PersistentCell<u64>,
    /// NVM image of the persisted log entries (durable mode).
    pub(crate) log_image: LogImage<O>,
}

impl<O: Clone> HookState<O> {
    pub(crate) fn new(
        rt: Arc<PmemRuntime>,
        durability: DurabilityLevel,
        epsilon: u64,
        fence_per_entry: bool,
        psan_fault: Option<PsanFault>,
    ) -> Arc<Self> {
        let psan = PsanLayout::new(&rt);
        Arc::new(HookState {
            rt,
            durability,
            fence_per_entry,
            psan,
            psan_fault,
            flush_boundary: CachePadded::new(AtomicU64::new(epsilon)),
            p_tails: [
                CachePadded::new(AtomicU64::new(0)),
                CachePadded::new(AtomicU64::new(0)),
            ],
            p_active: CachePadded::new(AtomicU64::new(0)),
            persisted_ct: CachePadded::new(AtomicU64::new(0)),
            durable_tail: CachePadded::new(AtomicU64::new(0)),
            stop: AtomicBool::new(false),
            ct_cell: PersistentCell::new(0),
            p_active_cell: PersistentCell::new(0),
            log_image: LogImage::new(),
        })
    }

    /// Bytes one log entry occupies in the packed NVM log layout (payload +
    /// emptyBit), for flush accounting.
    #[inline]
    fn entry_bytes() -> u64 {
        std::mem::size_of::<O>() as u64 + 1
    }

    /// Distinct cachelines spanned by entries `[from, to)` of the packed
    /// NVM log. Adjacent small entries share lines, so flushing a batch
    /// costs one `CLFLUSHOPT` per *spanned* line — not one per entry.
    /// ([`HookState::flush_entry_span`] issues exactly this many flushes;
    /// tests assert the arithmetic directly.)
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    fn span_lines(from: u64, to: u64) -> u64 {
        let eb = Self::entry_bytes();
        ((to * eb).div_ceil(64) - (from * eb) / 64).max(1)
    }

    /// Logical NVM address of entry `idx`'s first payload byte.
    #[inline]
    fn payload_addr(&self, idx: u64) -> u64 {
        self.psan.log_base + idx * Self::entry_bytes()
    }

    /// Logical NVM address of entry `idx`'s emptyBit (its last byte).
    #[inline]
    fn empty_bit_addr(&self, idx: u64) -> u64 {
        self.psan.log_base + (idx + 1) * Self::entry_bytes() - 1
    }

    /// Asynchronously flushes each distinct cacheline spanned by entries
    /// `[from, to)` — exactly [`HookState::span_lines`] many `CLFLUSHOPT`s
    /// (the log region base is line-aligned), each carrying its line
    /// address for the sanitizer.
    fn flush_entry_span(&self, from: u64, to: u64, site: &'static str) {
        let eb = Self::entry_bytes();
        let first = (self.psan.log_base + from * eb) / 64;
        let last = (self.psan.log_base + to * eb).div_ceil(64).max(first + 1);
        for line in first..last {
            // lint:allow(persist-hook): span-flush helper — every caller
            // traces the stores it persists (trace_store / trace_publish)
            // before invoking this; tracing again here would double-count.
            self.rt.clflushopt_at(line * 64, site);
        }
    }
}

/// The [`NrHooks`] implementation PREP plugs into `NodeReplicated`.
pub struct PrepHooks<O: Clone + Send + 'static> {
    pub(crate) state: Arc<HookState<O>>,
}

impl<O: Clone + Send + Sync + 'static> NrHooks<O> for PrepHooks<O> {
    fn reserve_admitted(&self, tail: u64) -> bool {
        // Algorithm 4: refuse while the reservation would pass the flush
        // boundary. Strictly (`tail >= boundary`, not `>`), which is what
        // makes the ε + β − 1 loss bound tight: reservation starts stay
        // ≤ boundary − 1, so at most (boundary − 1) + β entries ever exist
        // beyond the last persisted localTail (≥ boundary − ε).
        //
        // On shutdown the persistence thread no longer advances the
        // boundary; admit rather than hang (loss bounds are only claimed
        // for non-shut-down instances).
        // ord: Acquire pairs with the persistence thread's boundary
        // Release — admitting tail t implies we saw the replica/image state
        // that justified boundary > t.
        tail < self.state.flush_boundary.load(Ordering::Acquire)
            // ord: Acquire pairs with shutdown's stop Release: once seen,
            // the final persist pass has already been ordered before it.
            || self.state.stop.load(Ordering::Acquire)
    }

    fn persist_batch_payload(&self, range: Range<u64>) {
        if self.state.durability != DurabilityLevel::Durable {
            return;
        }
        if range.is_empty() {
            return;
        }
        // §4.1: write all payloads, asynchronously flush each touched line,
        // then a single fence for the whole batch — one CLFLUSHOPT per
        // *distinct line the batch spans*, since adjacent small entries
        // share lines. (The fence-per-entry ablation quantifies what the
        // batching saves; an intervening fence re-dirties shared boundary
        // lines, so there each entry flushes its own span.)
        const SITE: &str = "PrepHooks::persist_batch_payload";
        let st = &self.state;
        let eb = HookState::<O>::entry_bytes();
        let skip_fence = st.psan_fault == Some(PsanFault::SkipLogPayloadFence);
        if st.fence_per_entry {
            for idx in range {
                st.rt.trace_store(st.payload_addr(idx), eb - 1, SITE);
                st.flush_entry_span(idx, idx + 1, SITE);
                if !skip_fence {
                    st.rt.sfence();
                }
            }
        } else {
            st.rt.trace_store(
                st.payload_addr(range.start),
                (range.end - range.start) * eb,
                SITE,
            );
            st.flush_entry_span(range.start, range.end, SITE);
            if !skip_fence {
                st.rt.sfence();
            }
        }
    }

    fn persist_batch_published(&self, range: Range<u64>, op_at: &dyn Fn(u64) -> O) {
        if self.state.durability != DurabilityLevel::Durable {
            return;
        }
        // Flush the emptyBit image lines and fence again; only after this
        // fence are the entries recoverable, so this is where they enter
        // the crash-store image. The combiner's volatile publish loop runs
        // *after* this hook returns (on this same thread): an entry must
        // not become visible to other combiners — who can cover it with a
        // durably-published completedTail — until its image is fenced.
        const SITE: &str = "PrepHooks::persist_batch_published";
        let st = &self.state;
        let eb = HookState::<O>::entry_bytes();
        for idx in range.clone() {
            st.rt.trace_publish(
                st.empty_bit_addr(idx),
                1,
                &[(st.payload_addr(idx), eb - 1)],
                PublishTag::LogEntry,
                SITE,
            );
        }
        // Flush each *distinct* emptyBit line once. Flushing per entry (as
        // this used to) re-flushes a line for every further emptyBit on it
        // with no intervening store — the sanitizer's redundant-flush lint
        // flagged exactly that, and for small ops it is ~7× the flushes.
        let mut last_line = u64::MAX;
        for idx in range.clone() {
            let line = st.empty_bit_addr(idx) / 64;
            if line != last_line {
                st.rt.clflushopt_at(line * 64, SITE);
                last_line = line;
            }
        }
        st.rt.sfence();
        // The crash image needs the op values themselves: read each entry
        // back from the published log (the only clone of an op the durable
        // path performs — the combiner no longer keeps a batch vector).
        for idx in range {
            st.log_image.persist_entry(&st.rt, idx, op_at(idx));
        }
    }

    fn ensure_completed_tail_durable(&self, ct: u64) {
        if self.state.durability != DurabilityLevel::Durable {
            return;
        }
        // §5.2 flush-reduction protocol: skip the flush if some thread
        // already persisted a covering value; otherwise flush and publish
        // the new durable watermark. `record_max` keeps the NVM image
        // monotone under races between flushers of different values.
        // ord: Acquire pairs with the AcqRel fetch_max below — a covering
        // value implies the covering publish_clflush happened-before us.
        if self.state.persisted_ct.load(Ordering::Acquire) >= ct {
            return;
        }
        // Store + CLFLUSH as one atomic persist: `completedTail` publishes
        // every log byte below it, and a separate store/flush pair would
        // make a crash cut falling between the two look like a stale value
        // the sanitizer cannot tell from a real race.
        let st = &self.state;
        st.rt.publish_clflush(
            st.psan.ct_addr,
            std::mem::size_of::<u64>() as u64,
            &[(st.psan.log_base, ct * HookState::<O>::entry_bytes())],
            PublishTag::CompletedTail,
            "PrepHooks::ensure_completed_tail_durable",
        );
        st.ct_cell.record_max(&st.rt, ct);
        // ord: AcqRel — the release side publishes our flush to the skip
        // check above; acquire keeps competing maxima ordered.
        st.persisted_ct.fetch_max(ct, Ordering::AcqRel);
    }

    fn persistent_tails(&self) -> Vec<u64> {
        vec![
            // ord: Acquire pairs with the persistence thread's tail Release
            // stores; a tail t implies the replica image covers [0, t).
            self.state.p_tails[0].load(Ordering::Acquire),
            // ord: see above.
            self.state.p_tails[1].load(Ordering::Acquire),
        ]
    }

    fn help_persistent_straggler(&self, idx: usize, low_mark: u64) {
        // Algorithm 3: only the *stable* replica can be a stuck straggler
        // (the active one is being driven forward by the persistence
        // thread). Lower the flush boundary to force an early
        // persist-and-swap so the stable replica becomes active.
        //
        // Deadlock subtlety the paper's pseudocode glosses over: the
        // persist trigger is `flushBoundary <= activeReplica.localTail`,
        // and the active tail cannot pass completedTail — which is *frozen*
        // here (reserves are gated at the boundary and the blocked
        // combiners hold unfinished log entries). Lowering only to
        // `lowMark − 1` can therefore still leave the boundary unreachable.
        // We lower to the active replica's current tail as well, which the
        // persistence thread can always reach; persisting earlier than ε
        // only tightens the loss bound.
        // ord: Acquire pairs with the persistence thread's swap Release so
        // the tail we read below belongs to the replica we think is active.
        let active = self.state.p_active.load(Ordering::Acquire) as usize;
        // ord: Acquire — only lower a boundary we have actually observed.
        if active != idx && self.state.flush_boundary.load(Ordering::Acquire) >= low_mark {
            // ord: Acquire pairs with the tail's Release store.
            let active_tail = self.state.p_tails[active].load(Ordering::Acquire);
            let target = low_mark.saturating_sub(1).min(active_tail).max(1);
            // ord: Release so the persistence thread's Acquire of the new
            // boundary also sees why it was lowered.
            self.state.flush_boundary.store(target, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(durability: DurabilityLevel) -> PrepHooks<u64> {
        PrepHooks {
            state: HookState::new(PmemRuntime::for_crash_tests(), durability, 16, false, None),
        }
    }

    #[test]
    fn fence_per_entry_ablation_fences_each_entry() {
        let h = PrepHooks::<u64> {
            state: HookState::new(
                PmemRuntime::for_crash_tests(),
                DurabilityLevel::Durable,
                16,
                true,
                None,
            ),
        };
        h.persist_batch_payload(0..4);
        assert_eq!(h.state.rt.stats().snapshot().sfence, 4);
    }

    #[test]
    fn gate_admits_below_boundary_refuses_at_it() {
        let h = mk(DurabilityLevel::Buffered); // ε = boundary = 16
        assert!(h.reserve_admitted(15));
        assert!(!h.reserve_admitted(16), "tail at the boundary must wait");
        assert!(!h.reserve_admitted(17));
        h.state.flush_boundary.store(32, Ordering::Release);
        assert!(h.reserve_admitted(16));
    }

    #[test]
    fn gate_admits_everything_after_stop() {
        let h = mk(DurabilityLevel::Buffered);
        h.state.stop.store(true, Ordering::Release);
        assert!(h.reserve_admitted(1_000_000)); // must not wedge shutdown
    }

    #[test]
    fn buffered_skips_all_log_persistence() {
        let h = mk(DurabilityLevel::Buffered);
        h.persist_batch_payload(0..4);
        h.persist_batch_published(0..4, &|i| i + 1);
        h.ensure_completed_tail_durable(4);
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.total_flushes(), 0);
        assert_eq!(s.sfence, 0);
        assert!(h.state.log_image.is_empty());
        assert_eq!(h.state.ct_cell.read_image(), 0);
    }

    #[test]
    fn durable_persists_batch_with_one_fence_per_phase() {
        let h = mk(DurabilityLevel::Durable);
        h.persist_batch_payload(0..4);
        let s = h.state.rt.stats().snapshot();
        // Four 9-byte entries (u64 payload + emptyBit) span bytes [0, 36):
        // one cacheline, so one coalesced async flush.
        assert_eq!(s.clflushopt, 1, "one async flush per spanned line");
        assert_eq!(s.sfence, 1, "a single fence per batch (§4.1)");
        assert!(
            h.state.log_image.is_empty(),
            "payload-only persistence must not make entries recoverable"
        );
        h.persist_batch_published(0..4, &|i| i + 1);
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.sfence, 2);
        assert_eq!(h.state.log_image.len(), 4);
        assert_eq!(
            h.state.log_image.persisted_range(0, 4),
            vec![(0, 1), (1, 2), (2, 3), (3, 4)]
        );
    }

    #[test]
    fn payload_flushes_coalesce_by_spanned_lines() {
        // Entries are 9 bytes; lines hold 64. A batch of 16 entries spans
        // 144 bytes; start offset matters for the line count.
        assert_eq!(HookState::<u64>::span_lines(0, 16), 3); // [0, 144)
        assert_eq!(HookState::<u64>::span_lines(7, 8), 2); // [63, 72) straddles
        assert_eq!(HookState::<u64>::span_lines(6, 8), 2); // [54, 72)
        let h = mk(DurabilityLevel::Durable);
        h.persist_batch_payload(6..8);
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.clflushopt, 2);
        assert_eq!(s.sfence, 1);
    }

    #[test]
    fn completed_tail_flushes_are_deduplicated() {
        let h = mk(DurabilityLevel::Durable);
        h.ensure_completed_tail_durable(10);
        h.ensure_completed_tail_durable(10);
        h.ensure_completed_tail_durable(7); // already covered
        let s = h.state.rt.stats().snapshot();
        assert_eq!(s.clflush, 1, "covered values must not re-flush");
        assert_eq!(h.state.ct_cell.read_image(), 10);
        h.ensure_completed_tail_durable(20);
        assert_eq!(h.state.ct_cell.read_image(), 20);
        assert_eq!(h.state.rt.stats().snapshot().clflush, 2);
    }

    #[test]
    fn straggler_help_lowers_boundary_only_for_stable_replica() {
        let h = mk(DurabilityLevel::Buffered);
        h.state.flush_boundary.store(100, Ordering::Release);
        // The active replica (0) has applied up to 80.
        h.state.p_tails[0].store(80, Ordering::Release);
        // active = 0 → helping replica 0 (the active one) is a no-op.
        h.help_persistent_straggler(0, 50);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 100);
        // Helping replica 1 (stable) lowers the boundary to
        // min(lowMark − 1, active tail): here lowMark − 1 = 49 binds.
        h.help_persistent_straggler(1, 50);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 49);
        // Already below lowMark → no further lowering.
        h.help_persistent_straggler(1, 60);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 49);
        // When the active replica's tail is below lowMark − 1, the tail
        // binds instead — the persistence thread must be able to reach the
        // boundary (deadlock backstop).
        h.state.flush_boundary.store(100, Ordering::Release);
        h.state.p_tails[0].store(20, Ordering::Release);
        h.help_persistent_straggler(1, 50);
        assert_eq!(h.state.flush_boundary.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn persistent_tails_mirror_atomics() {
        let h = mk(DurabilityLevel::Buffered);
        h.state.p_tails[0].store(3, Ordering::Release);
        h.state.p_tails[1].store(9, Ordering::Release);
        assert_eq!(h.persistent_tails(), vec![3, 9]);
    }
}
