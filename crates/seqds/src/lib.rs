//! Sequential data structures for the PREP-UC reproduction.
//!
//! A universal construction takes a **sequential** object and produces a
//! concurrent (and, for PREP-UC, persistent) one. The paper's interface is
//! `ExecuteConcurrent(op, args, is_read_only)`; the Rust equivalent is the
//! [`SequentialObject`] trait, whose associated `Op` type plays the role of
//! the paper's function-pointer-plus-arguments log entry (§5.2 explains why
//! the C++ implementation stores raw function pointers and dispatches
//! through a per-object `Execute` switch; a Rust enum *is* that switch, and
//! unlike `std::function` it remains valid after recovery).
//!
//! Everything here is single-threaded code with no synchronization — that is
//! the whole point: the universal constructions in `prep-nr` / `prep-uc` /
//! `prep-cx` turn these into concurrent persistent objects without touching
//! their code.
//!
//! The structures mirror the paper's evaluation (§6): a resizable
//! chained [`hashmap::HashMap`], a [`rbtree::RbTree`] red-black tree, a
//! [`pqueue::PriorityQueue`], a [`stack::Stack`], a FIFO [`queue::Queue`]
//! (Figure 1c), and a sorted [`list::SortedList`] set. The
//! [`recorder::Recorder`] is test instrumentation: its state is the exact
//! sequence of update operations applied, which makes linearization-prefix
//! properties directly checkable after a simulated crash.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hashmap;
pub mod list;
pub mod pqueue;
pub mod queue;
pub mod rbtree;
pub mod recorder;
pub mod stack;

/// A sequential object that a universal construction can replicate.
///
/// Implementations must behave deterministically: `apply` on equal states
/// with equal operations must produce equal results and equal successor
/// states. The universal constructions rely on this to keep replicas
/// identical (every replica applies the same log prefix).
pub trait SequentialObject: Clone + Send + Sync + 'static {
    /// An update or read-only operation, including its arguments. This is
    /// what gets written to the shared log, so it must be plain shareable
    /// data (and survives recovery by construction).
    type Op: Clone + Send + Sync + std::fmt::Debug + 'static;
    /// The response returned to the invoking thread.
    type Resp: Send + std::fmt::Debug + 'static;

    /// Applies `op`, mutating the object and returning the response.
    fn apply(&mut self, op: &Self::Op) -> Self::Resp;

    /// Applies a **read-only** `op` through a shared reference.
    ///
    /// NR executes read-only operations under the replica's reader-writer
    /// lock in *read* mode (§3), so they need shared access. Implementations
    /// must return exactly what [`SequentialObject::apply`] would.
    ///
    /// # Panics
    /// Implementations panic if `op` is not read-only
    /// (`is_read_only(op) == false`); the universal constructions never call
    /// this with an update.
    fn apply_readonly(&self, op: &Self::Op) -> Self::Resp;

    /// True if `op` never mutates the object. Read-only operations bypass
    /// the log (they execute against an up-to-date replica under a read
    /// lock). This is the paper's "optional Boolean argument" on
    /// `ExecuteConcurrent`.
    fn is_read_only(op: &Self::Op) -> bool;

    /// Deep copy, used to instantiate replicas (at construction and during
    /// recovery, §5.1: "we instantiate all N volatile replicas as copies of
    /// the stable persistent replica"). Defaults to `Clone`.
    fn clone_object(&self) -> Self
    where
        Self: Sized,
    {
        self.clone()
    }

    /// Rough current size in bytes, used by the persistence cost model
    /// (WBINVD footprint, CX's whole-replica flush).
    fn approx_bytes(&self) -> u64;

    /// Bytes whose cachelines have been dirtied by updates since the last
    /// [`SequentialObject::clear_dirty`] — what an incremental checkpoint
    /// has to flush instead of the whole structure.
    ///
    /// The default is the conservative fallback: the entire structure
    /// ([`SequentialObject::approx_bytes`]), which makes
    /// `FlushStrategy::DirtyLines` behave exactly like `RangeFlush` for
    /// objects without precise tracking. Implementations with precise
    /// tracking (all of `prep-seqds`, via [`DirtyTracker`]) return
    /// `64 × |distinct dirty lines|`.
    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.approx_bytes()
    }

    /// Resets dirty tracking after a checkpoint flush; from this point the
    /// object accrues a fresh dirty set. Default: no-op (paired with the
    /// whole-structure fallback above).
    fn clear_dirty(&mut self) {}

    /// The distinct dirty cacheline start offsets (in the structure's
    /// logical address space, sorted) accrued since the last
    /// [`SequentialObject::clear_dirty`] — the exact line set an
    /// incremental checkpoint flushes, used by the persistence-ordering
    /// sanitizer to give those flushes address identity. `None` when
    /// precise tracking is unavailable (default, or a saturated
    /// [`DirtyTracker`]): the caller falls back to a whole-structure range
    /// flush, consistent with [`dirty_bytes_since_checkpoint`].
    ///
    /// [`dirty_bytes_since_checkpoint`]: SequentialObject::dirty_bytes_since_checkpoint
    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        None
    }
}

/// Models a cacheline in bytes — the unit `clflush`/`clflushopt` operate on.
pub const CACHE_LINE: u64 = 64;

/// Tracks the set of **distinct dirty cachelines** of a sequential object
/// between checkpoints, over a *logical* address space the structure
/// defines for itself (e.g. the hashmap maps bucket `b`, slot `s` to a
/// stable offset; the red-black tree maps arena node `i` to `i × 32`).
///
/// Tracking is off until the first [`DirtyTracker::reset`] — the universal
/// construction's persistence thread enables it only on the persistent
/// replicas it checkpoints, so the N volatile NR replicas (which apply every
/// op on the combiner hot path) pay one branch per touch and nothing more.
///
/// While off, [`DirtyTracker::dirty_bytes`] returns the caller-supplied
/// whole-structure fallback, matching the `SequentialObject` default.
#[derive(Debug, Clone, Default)]
pub struct DirtyTracker {
    lines: Option<std::collections::HashSet<u64>>,
    /// Set when a mutation moved the whole structure (e.g. a hashmap
    /// resize or arena reallocation): everything is dirty until `reset`.
    saturated: bool,
}

impl DirtyTracker {
    /// A tracker in the off (fallback) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once [`DirtyTracker::reset`] has switched precise tracking on.
    pub fn is_tracking(&self) -> bool {
        self.lines.is_some()
    }

    /// Marks the lines spanned by `len` bytes at logical offset `offset`.
    #[inline]
    pub fn touch(&mut self, offset: u64, len: u64) {
        if let Some(lines) = &mut self.lines {
            if self.saturated || len == 0 {
                return;
            }
            let first = offset / CACHE_LINE;
            let last = offset.saturating_add(len - 1) / CACHE_LINE;
            for line in first..=last {
                lines.insert(line);
            }
        }
    }

    /// Marks the entire structure dirty (wholesale moves: resize, arena
    /// growth). Cleared by the next [`DirtyTracker::reset`].
    #[inline]
    pub fn touch_all(&mut self) {
        if self.lines.is_some() {
            self.saturated = true;
        }
    }

    /// Bytes to flush for an incremental checkpoint: `64 × |dirty lines|`
    /// when tracking, or `whole_structure` when off or saturated.
    pub fn dirty_bytes(&self, whole_structure: u64) -> u64 {
        match &self.lines {
            Some(lines) if !self.saturated => (lines.len() as u64) * CACHE_LINE,
            _ => whole_structure,
        }
    }

    /// The distinct dirty cacheline start offsets, sorted — `None` while
    /// off or saturated (callers fall back to a whole-structure flush,
    /// mirroring [`DirtyTracker::dirty_bytes`]).
    pub fn lines(&self) -> Option<Vec<u64>> {
        match &self.lines {
            Some(lines) if !self.saturated => {
                let mut out: Vec<u64> = lines.iter().map(|l| l * CACHE_LINE).collect();
                out.sort_unstable();
                Some(out)
            }
            _ => None,
        }
    }

    /// Clears the dirty set and enables precise tracking.
    pub fn reset(&mut self) {
        self.saturated = false;
        match &mut self.lines {
            Some(lines) => lines.clear(),
            None => self.lines = Some(std::collections::HashSet::new()),
        }
    }
}

#[cfg(test)]
mod dirty_tracker_tests {
    use super::*;

    #[test]
    fn off_by_default_falls_back_to_whole_structure() {
        let mut t = DirtyTracker::new();
        assert!(!t.is_tracking());
        t.touch(0, 1024); // ignored while off
        assert_eq!(t.dirty_bytes(9999), 9999);
    }

    #[test]
    fn tracks_distinct_lines_after_reset() {
        let mut t = DirtyTracker::new();
        t.reset();
        assert!(t.is_tracking());
        assert_eq!(t.dirty_bytes(9999), 0);
        t.touch(0, 8); // line 0
        t.touch(8, 8); // line 0 again — no new line
        t.touch(63, 2); // straddles lines 0 and 1
        assert_eq!(t.dirty_bytes(9999), 2 * CACHE_LINE);
        t.reset();
        assert_eq!(t.dirty_bytes(9999), 0);
    }

    #[test]
    fn saturation_reports_whole_structure_until_reset() {
        let mut t = DirtyTracker::new();
        t.reset();
        t.touch(0, 8);
        t.touch_all();
        assert_eq!(t.dirty_bytes(4096), 4096);
        t.reset();
        t.touch(128, 8);
        assert_eq!(t.dirty_bytes(4096), CACHE_LINE);
    }

    #[test]
    fn zero_length_touch_is_ignored() {
        let mut t = DirtyTracker::new();
        t.reset();
        t.touch(100, 0);
        assert_eq!(t.dirty_bytes(4096), 0);
    }
}
