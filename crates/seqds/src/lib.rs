//! Sequential data structures for the PREP-UC reproduction.
//!
//! A universal construction takes a **sequential** object and produces a
//! concurrent (and, for PREP-UC, persistent) one. The paper's interface is
//! `ExecuteConcurrent(op, args, is_read_only)`; the Rust equivalent is the
//! [`SequentialObject`] trait, whose associated `Op` type plays the role of
//! the paper's function-pointer-plus-arguments log entry (§5.2 explains why
//! the C++ implementation stores raw function pointers and dispatches
//! through a per-object `Execute` switch; a Rust enum *is* that switch, and
//! unlike `std::function` it remains valid after recovery).
//!
//! Everything here is single-threaded code with no synchronization — that is
//! the whole point: the universal constructions in `prep-nr` / `prep-uc` /
//! `prep-cx` turn these into concurrent persistent objects without touching
//! their code.
//!
//! The structures mirror the paper's evaluation (§6): a resizable
//! chained [`hashmap::HashMap`], a [`rbtree::RbTree`] red-black tree, a
//! [`pqueue::PriorityQueue`], a [`stack::Stack`], a FIFO [`queue::Queue`]
//! (Figure 1c), and a sorted [`list::SortedList`] set. The
//! [`recorder::Recorder`] is test instrumentation: its state is the exact
//! sequence of update operations applied, which makes linearization-prefix
//! properties directly checkable after a simulated crash.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hashmap;
pub mod list;
pub mod pqueue;
pub mod queue;
pub mod rbtree;
pub mod recorder;
pub mod stack;

/// A sequential object that a universal construction can replicate.
///
/// Implementations must behave deterministically: `apply` on equal states
/// with equal operations must produce equal results and equal successor
/// states. The universal constructions rely on this to keep replicas
/// identical (every replica applies the same log prefix).
pub trait SequentialObject: Clone + Send + Sync + 'static {
    /// An update or read-only operation, including its arguments. This is
    /// what gets written to the shared log, so it must be plain shareable
    /// data (and survives recovery by construction).
    type Op: Clone + Send + Sync + std::fmt::Debug + 'static;
    /// The response returned to the invoking thread.
    type Resp: Send + std::fmt::Debug + 'static;

    /// Applies `op`, mutating the object and returning the response.
    fn apply(&mut self, op: &Self::Op) -> Self::Resp;

    /// Applies a **read-only** `op` through a shared reference.
    ///
    /// NR executes read-only operations under the replica's reader-writer
    /// lock in *read* mode (§3), so they need shared access. Implementations
    /// must return exactly what [`SequentialObject::apply`] would.
    ///
    /// # Panics
    /// Implementations panic if `op` is not read-only
    /// (`is_read_only(op) == false`); the universal constructions never call
    /// this with an update.
    fn apply_readonly(&self, op: &Self::Op) -> Self::Resp;

    /// True if `op` never mutates the object. Read-only operations bypass
    /// the log (they execute against an up-to-date replica under a read
    /// lock). This is the paper's "optional Boolean argument" on
    /// `ExecuteConcurrent`.
    fn is_read_only(op: &Self::Op) -> bool;

    /// Deep copy, used to instantiate replicas (at construction and during
    /// recovery, §5.1: "we instantiate all N volatile replicas as copies of
    /// the stable persistent replica"). Defaults to `Clone`.
    fn clone_object(&self) -> Self
    where
        Self: Sized,
    {
        self.clone()
    }

    /// Rough current size in bytes, used by the persistence cost model
    /// (WBINVD footprint, CX's whole-replica flush).
    fn approx_bytes(&self) -> u64;
}
