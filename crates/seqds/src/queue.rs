//! A FIFO queue (paper Figure 1c: "100% update workload where workers
//! execute pairs of enqueue and dequeue operations").

use std::collections::VecDeque;

use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: the slot written by the `i`-th
/// enqueue ever performed lives at `i × 8` (a ring buffer reuses physical
/// slots; distinct-line counts per checkpoint interval match as long as the
/// interval's writes don't wrap the ring), and the head/tail indices share
/// one header line. Dequeues only advance the head index — the vacated slot
/// is not rewritten.
const HEADER_BASE: u64 = 1 << 50;

/// Operations on [`Queue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Append a value at the tail.
    Enqueue(u64),
    /// Remove the value at the head.
    Dequeue,
    /// Read the head without removing it (read-only).
    Front,
    /// Current size (read-only).
    Len,
}

/// Responses for [`QueueOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueResp {
    /// Enqueue acknowledgement.
    Ok,
    /// Dequeued or inspected value (None when empty).
    Value(Option<u64>),
    /// Element count.
    Len(usize),
}

/// A ring-buffer FIFO queue of `u64`.
#[derive(Debug, Clone, Default)]
pub struct Queue {
    items: VecDeque<u64>,
    enq_seq: u64,
    dirty: DirtyTracker,
}

impl Queue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `v` at the tail.
    pub fn enqueue(&mut self, v: u64) {
        self.dirty.touch(self.enq_seq * 8, 8);
        self.dirty.touch(HEADER_BASE, 16);
        self.enq_seq += 1;
        self.items.push_back(v);
    }

    /// Removes and returns the head.
    pub fn dequeue(&mut self) -> Option<u64> {
        let v = self.items.pop_front();
        if v.is_some() {
            self.dirty.touch(HEADER_BASE, 16);
        }
        v
    }

    /// Reads the head without removing it.
    pub fn front(&self) -> Option<u64> {
        self.items.front().copied()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl SequentialObject for Queue {
    type Op = QueueOp;
    type Resp = QueueResp;

    fn apply(&mut self, op: &QueueOp) -> QueueResp {
        match *op {
            QueueOp::Enqueue(v) => {
                self.enqueue(v);
                QueueResp::Ok
            }
            QueueOp::Dequeue => QueueResp::Value(self.dequeue()),
            QueueOp::Front => QueueResp::Value(self.front()),
            QueueOp::Len => QueueResp::Len(self.len()),
        }
    }

    fn apply_readonly(&self, op: &QueueOp) -> QueueResp {
        match *op {
            QueueOp::Front => QueueResp::Value(self.front()),
            QueueOp::Len => QueueResp::Len(self.len()),
            _ => panic!("apply_readonly called with update operation {op:?}"),
        }
    }

    fn is_read_only(op: &QueueOp) -> bool {
        matches!(op, QueueOp::Front | QueueOp::Len)
    }

    fn clone_object(&self) -> Self {
        self.clone()
    }

    fn approx_bytes(&self) -> u64 {
        (self.items.len() * std::mem::size_of::<u64>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CACHE_LINE;

    #[test]
    fn dirty_bytes_track_appended_slots() {
        let mut q = Queue::new();
        q.clear_dirty();
        for v in 0..8u64 {
            q.enqueue(v); // 8 slots = 1 data line, + 1 header line
        }
        assert_eq!(q.dirty_bytes_since_checkpoint(), 2 * CACHE_LINE);
        q.clear_dirty();
        assert_eq!(q.dequeue(), Some(0)); // header only
        assert_eq!(q.dirty_bytes_since_checkpoint(), CACHE_LINE);
    }

    #[test]
    fn fifo_order() {
        let mut q = Queue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.front(), Some(1));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn dispatch_and_read_only() {
        let mut q = Queue::new();
        assert_eq!(q.apply(&QueueOp::Enqueue(5)), QueueResp::Ok);
        assert_eq!(q.apply(&QueueOp::Front), QueueResp::Value(Some(5)));
        assert_eq!(q.apply(&QueueOp::Len), QueueResp::Len(1));
        assert_eq!(q.apply(&QueueOp::Dequeue), QueueResp::Value(Some(5)));
        assert!(Queue::is_read_only(&QueueOp::Front));
        assert!(!Queue::is_read_only(&QueueOp::Enqueue(0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::SequentialObject;
    use proptest::prelude::*;

    proptest! {
        /// Differential test against a model VecDeque over random traces,
        /// including agreement between apply and apply_readonly.
        #[test]
        fn matches_model_deque(ops in proptest::collection::vec(
            (0u8..3, any::<u64>()), 1..300))
        {
            let mut ours = Queue::new();
            let mut reference: std::collections::VecDeque<u64> =
                std::collections::VecDeque::new();
            for (kind, v) in ops {
                match kind {
                    0 => {
                        ours.enqueue(v);
                        reference.push_back(v);
                    }
                    1 => prop_assert_eq!(ours.dequeue(), reference.pop_front()),
                    _ => {
                        prop_assert_eq!(ours.front(), reference.front().copied());
                        prop_assert_eq!(
                            ours.apply_readonly(&QueueOp::Len),
                            QueueResp::Len(reference.len())
                        );
                    }
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
        }
    }
}
