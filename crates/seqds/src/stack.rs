//! A LIFO stack (paper §6 "Stack").

use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: slot `i` of the backing vector
/// lives at `i × 8`; the length counter has its own header line. A pop only
/// decrements the length — the vacated slot is not rewritten.
const HEADER_BASE: u64 = 1 << 50;

/// Operations on [`Stack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the top value.
    Pop,
    /// Read the top value (read-only).
    Top,
    /// Current size (read-only).
    Len,
}

/// Responses for [`StackOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackResp {
    /// Push acknowledgement.
    Ok,
    /// Popped or inspected value (None when empty).
    Value(Option<u64>),
    /// Element count.
    Len(usize),
}

/// A vector-backed stack of `u64`.
#[derive(Debug, Clone, Default)]
pub struct Stack {
    items: Vec<u64>,
    dirty: DirtyTracker,
}

impl Stack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes `v`.
    pub fn push(&mut self, v: u64) {
        self.dirty.touch(self.items.len() as u64 * 8, 8);
        self.dirty.touch(HEADER_BASE, 8);
        self.items.push(v);
    }

    /// Pops the most recently pushed value.
    pub fn pop(&mut self) -> Option<u64> {
        let v = self.items.pop();
        if v.is_some() {
            self.dirty.touch(HEADER_BASE, 8);
        }
        v
    }

    /// Reads the top without removing it.
    pub fn top(&self) -> Option<u64> {
        self.items.last().copied()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl SequentialObject for Stack {
    type Op = StackOp;
    type Resp = StackResp;

    fn apply(&mut self, op: &StackOp) -> StackResp {
        match *op {
            StackOp::Push(v) => {
                self.push(v);
                StackResp::Ok
            }
            StackOp::Pop => StackResp::Value(self.pop()),
            StackOp::Top => StackResp::Value(self.top()),
            StackOp::Len => StackResp::Len(self.len()),
        }
    }

    fn apply_readonly(&self, op: &StackOp) -> StackResp {
        match *op {
            StackOp::Top => StackResp::Value(self.top()),
            StackOp::Len => StackResp::Len(self.len()),
            _ => panic!("apply_readonly called with update operation {op:?}"),
        }
    }

    fn is_read_only(op: &StackOp) -> bool {
        matches!(op, StackOp::Top | StackOp::Len)
    }

    fn clone_object(&self) -> Self {
        self.clone()
    }

    fn approx_bytes(&self) -> u64 {
        (self.items.len() * std::mem::size_of::<u64>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CACHE_LINE;

    #[test]
    fn dirty_bytes_track_top_of_stack() {
        let mut s = Stack::new();
        for v in 0..1_000u64 {
            s.push(v);
        }
        s.clear_dirty();
        s.push(1_000); // one slot line + header line
        assert_eq!(s.dirty_bytes_since_checkpoint(), 2 * CACHE_LINE);
        s.pop(); // header already dirty
        assert_eq!(s.dirty_bytes_since_checkpoint(), 2 * CACHE_LINE);
        assert!(s.approx_bytes() > 2 * CACHE_LINE);
    }

    #[test]
    fn lifo_order() {
        let mut s = Stack::new();
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.top(), Some(3));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn dispatch_and_read_only() {
        let mut s = Stack::new();
        assert_eq!(s.apply(&StackOp::Push(9)), StackResp::Ok);
        assert_eq!(s.apply(&StackOp::Top), StackResp::Value(Some(9)));
        assert_eq!(s.apply(&StackOp::Len), StackResp::Len(1));
        assert_eq!(s.apply(&StackOp::Pop), StackResp::Value(Some(9)));
        assert!(Stack::is_read_only(&StackOp::Top));
        assert!(!Stack::is_read_only(&StackOp::Pop));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::SequentialObject;
    use proptest::prelude::*;

    proptest! {
        /// Differential test against Vec over random push/pop/top traces,
        /// including agreement between apply and apply_readonly.
        #[test]
        fn matches_vec(ops in proptest::collection::vec(
            (0u8..3, any::<u64>()), 1..300))
        {
            let mut ours = Stack::new();
            let mut reference: Vec<u64> = Vec::new();
            for (kind, v) in ops {
                match kind {
                    0 => {
                        ours.push(v);
                        reference.push(v);
                    }
                    1 => prop_assert_eq!(ours.pop(), reference.pop()),
                    _ => {
                        prop_assert_eq!(ours.top(), reference.last().copied());
                        prop_assert_eq!(
                            ours.apply_readonly(&StackOp::Top),
                            StackResp::Value(reference.last().copied())
                        );
                    }
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
        }
    }
}
