//! A resizable, separate-chaining hashmap (paper §6 "Hashmap": "a resizable
//! linked list based hashmap").
//!
//! Deliberately plain sequential code: `Vec` of bucket chains, doubling
//! resize at load factor 1.0, Fibonacci hashing for u64 keys. No
//! synchronization, no persistence — the universal constructions provide
//! both.

use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: bucket headers live at
/// `b × 24`, bucket `b`'s chain entries in a window at
/// `ENTRY_BASE + (b << 16) + slot × 16`, and the `len` counter on its own
/// line at `LEN_BASE`. Stable across everything except a resize, which
/// rehashes (moves) every entry and therefore saturates the tracker.
const ENTRY_BASE: u64 = 1 << 40;
const LEN_BASE: u64 = 1 << 50;
const BUCKET_HEADER_BYTES: u64 = std::mem::size_of::<Vec<(u64, u64)>>() as u64;
const ENTRY_BYTES: u64 = std::mem::size_of::<(u64, u64)>() as u64;

/// Operations on [`HashMap`]; this enum is the log-entry payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Insert or overwrite `key` with `value`.
    Insert {
        /// Key to insert.
        key: u64,
        /// Value to associate.
        value: u64,
    },
    /// Remove `key` if present.
    Remove {
        /// Key to remove.
        key: u64,
    },
    /// Read the value for `key` (read-only).
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Membership test (read-only).
    Contains {
        /// Key to test.
        key: u64,
    },
    /// Current number of entries (read-only).
    Len,
}

impl MapOp {
    /// The key this operation addresses, if any (`Len` is keyless). This
    /// is the natural routing key for partitioned deployments
    /// (`prep-shard`): keyed ops go to one shard, `Len` must be broadcast.
    pub fn key(&self) -> Option<u64> {
        match *self {
            MapOp::Insert { key, .. }
            | MapOp::Remove { key }
            | MapOp::Get { key }
            | MapOp::Contains { key } => Some(key),
            MapOp::Len => None,
        }
    }
}

/// Responses for [`MapOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapResp {
    /// Previous value (for insert/remove) or looked-up value (for get).
    Value(Option<u64>),
    /// Membership answer.
    Bool(bool),
    /// Entry count.
    Len(usize),
}

/// A resizable chained hashmap from `u64` to `u64`.
#[derive(Debug, Clone)]
pub struct HashMap {
    buckets: Vec<Vec<(u64, u64)>>,
    len: usize,
    dirty: DirtyTracker,
}

impl HashMap {
    /// Creates a map with a small initial bucket count.
    pub fn new() -> Self {
        Self::with_buckets(16)
    }

    /// Creates a map with `buckets` initial buckets (rounded up to a power
    /// of two).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(2);
        HashMap {
            buckets: vec![Vec::new(); n],
            len: 0,
            dirty: DirtyTracker::new(),
        }
    }

    #[inline]
    fn touch_entry(&mut self, bucket: usize, slot: usize) {
        self.dirty.touch(
            ENTRY_BASE + ((bucket as u64) << 16) + slot as u64 * ENTRY_BYTES,
            ENTRY_BYTES,
        );
    }

    #[inline]
    fn touch_bucket_header(&mut self, bucket: usize) {
        self.dirty
            .touch(bucket as u64 * BUCKET_HEADER_BYTES, BUCKET_HEADER_BYTES);
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and take the top bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.buckets.len().trailing_zeros())) as usize
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        if self.len >= self.buckets.len() {
            self.resize();
        }
        let b = self.bucket_of(key);
        if let Some(pos) = self.buckets[b].iter().position(|&(k, _)| k == key) {
            self.touch_entry(b, pos);
            return Some(std::mem::replace(&mut self.buckets[b][pos].1, value));
        }
        let slot = self.buckets[b].len();
        self.buckets[b].push((key, value));
        self.len += 1;
        self.touch_entry(b, slot);
        self.touch_bucket_header(b);
        self.dirty.touch(LEN_BASE, 8);
        None
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        if let Some(pos) = self.buckets[b].iter().position(|&(k, _)| k == key) {
            self.len -= 1;
            // swap_remove writes the tail entry into `pos`.
            let last = self.buckets[b].len() - 1;
            self.touch_entry(b, pos);
            self.touch_entry(b, last);
            self.touch_bucket_header(b);
            self.dirty.touch(LEN_BASE, 8);
            Some(self.buckets[b].swap_remove(pos).1)
        } else {
            None
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count (exposed for resize tests).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn resize(&mut self) {
        // Every entry rehashes into a fresh table: the whole map is dirty.
        self.dirty.touch_all();
        let new_n = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![Vec::new(); new_n]);
        let entries: Vec<(u64, u64)> = old.into_iter().flatten().collect();
        for (k, v) in entries {
            let b = self.bucket_of(k);
            self.buckets[b].push((k, v));
        }
    }
}

impl Default for HashMap {
    fn default() -> Self {
        Self::new()
    }
}

impl SequentialObject for HashMap {
    type Op = MapOp;
    type Resp = MapResp;

    fn apply(&mut self, op: &MapOp) -> MapResp {
        match *op {
            MapOp::Insert { key, value } => MapResp::Value(self.insert(key, value)),
            MapOp::Remove { key } => MapResp::Value(self.remove(key)),
            MapOp::Get { key } => MapResp::Value(self.get(key)),
            MapOp::Contains { key } => MapResp::Bool(self.contains(key)),
            MapOp::Len => MapResp::Len(self.len()),
        }
    }

    fn apply_readonly(&self, op: &MapOp) -> MapResp {
        match *op {
            MapOp::Get { key } => MapResp::Value(self.get(key)),
            MapOp::Contains { key } => MapResp::Bool(self.contains(key)),
            MapOp::Len => MapResp::Len(self.len()),
            _ => panic!("apply_readonly called with update operation {op:?}"),
        }
    }

    fn is_read_only(op: &MapOp) -> bool {
        matches!(op, MapOp::Get { .. } | MapOp::Contains { .. } | MapOp::Len)
    }

    fn clone_object(&self) -> Self {
        self.clone()
    }

    fn approx_bytes(&self) -> u64 {
        (self.buckets.len() * std::mem::size_of::<Vec<(u64, u64)>>()
            + self.len * std::mem::size_of::<(u64, u64)>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = HashMap::new();
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.get(3), None);
        assert!(m.contains(2));
        assert_eq!(m.remove(2), Some(20));
        assert_eq!(m.remove(2), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn resize_preserves_contents() {
        let mut m = HashMap::with_buckets(2);
        let before = m.bucket_count();
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        assert!(m.bucket_count() > before);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(k * 2), "key {k} lost in resize");
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn sequential_object_dispatch_and_read_only() {
        let mut m = HashMap::new();
        assert_eq!(
            m.apply(&MapOp::Insert { key: 5, value: 7 }),
            MapResp::Value(None)
        );
        assert_eq!(m.apply(&MapOp::Get { key: 5 }), MapResp::Value(Some(7)));
        assert_eq!(m.apply(&MapOp::Contains { key: 5 }), MapResp::Bool(true));
        assert_eq!(m.apply(&MapOp::Len), MapResp::Len(1));
        assert!(HashMap::is_read_only(&MapOp::Get { key: 0 }));
        assert!(HashMap::is_read_only(&MapOp::Len));
        assert!(!HashMap::is_read_only(&MapOp::Insert { key: 0, value: 0 }));
        assert!(!HashMap::is_read_only(&MapOp::Remove { key: 0 }));
    }

    #[test]
    fn clone_object_is_independent() {
        let mut a = HashMap::new();
        a.insert(1, 1);
        let mut b = a.clone_object();
        b.insert(2, 2);
        assert!(!a.contains(2));
        assert!(b.contains(1));
    }

    #[test]
    fn dirty_bytes_track_write_set_not_structure_size() {
        let mut m = HashMap::with_buckets(1 << 14); // big enough to never resize
        for k in 0..5_000u64 {
            m.insert(k, k);
        }
        // Before tracking is enabled, the fallback is the whole structure.
        assert_eq!(m.dirty_bytes_since_checkpoint(), m.approx_bytes());
        m.clear_dirty();
        assert_eq!(m.dirty_bytes_since_checkpoint(), 0);
        // A single overwrite dirties a constant number of lines…
        m.insert(42, 999);
        let one = m.dirty_bytes_since_checkpoint();
        assert!((64..=3 * 64).contains(&one), "one op dirtied {one} bytes");
        // …and rewriting the same key repeatedly adds no new lines.
        for _ in 0..100 {
            m.insert(42, 1000);
        }
        assert_eq!(m.dirty_bytes_since_checkpoint(), one);
        assert!(
            m.approx_bytes() > 100 * one,
            "fallback must dwarf dirty set"
        );
    }

    #[test]
    fn resize_saturates_dirty_tracking() {
        let mut m = HashMap::with_buckets(2);
        m.clear_dirty();
        for k in 0..100u64 {
            m.insert(k, k); // forces several resizes
        }
        assert_eq!(m.dirty_bytes_since_checkpoint(), m.approx_bytes());
        m.clear_dirty();
        assert_eq!(m.dirty_bytes_since_checkpoint(), 0);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut m = HashMap::new();
        let empty = m.approx_bytes();
        for k in 0..100 {
            m.insert(k, k);
        }
        assert!(m.approx_bytes() > empty);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Differential test against std's HashMap over random op traces.
        #[test]
        fn matches_std_hashmap(ops in proptest::collection::vec(
            (0u8..3, 0u64..64, any::<u64>()), 1..400))
        {
            let mut ours = HashMap::with_buckets(2);
            let mut reference = std::collections::HashMap::new();
            for (kind, k, v) in ops {
                match kind {
                    0 => prop_assert_eq!(ours.insert(k, v), reference.insert(k, v)),
                    1 => prop_assert_eq!(ours.remove(k), reference.remove(&k)),
                    _ => prop_assert_eq!(ours.get(k), reference.get(&k).copied()),
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
        }
    }
}
