//! A sorted singly-linked list set.
//!
//! Unlike the other structures this one allocates a node per element
//! (`Box`-chained), which makes it the structure of choice for exercising
//! the paper's allocator-swap mechanism (§5.1): when the persistence thread
//! applies list operations with the persistent allocator enabled, every node
//! it creates lands in the persistent arena without this file knowing
//! anything about persistence.

use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: keys are unique (it's a set), so
/// the node holding `key` gets the stable address `key × 16`
/// (`size_of::<ListNode>()`), and the head pointer + length share a header
/// line. An insert dirties the new node and its predecessor's `next`
/// pointer; a remove dirties the predecessor only.
const NODE_BYTES: u64 = 16;
const HEADER_BASE: u64 = u64::MAX - 127;

/// Operations on [`SortedList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Insert a key; false if already present.
    Insert(u64),
    /// Remove a key; false if absent.
    Remove(u64),
    /// Membership test (read-only).
    Contains(u64),
    /// Current size (read-only).
    Len,
}

/// Responses for [`SetOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetResp {
    /// Success/failure of the operation.
    Bool(bool),
    /// Element count.
    Len(usize),
}

#[derive(Debug, Clone)]
struct ListNode {
    key: u64,
    next: Option<Box<ListNode>>,
}

/// A sorted singly-linked list of unique `u64` keys.
#[derive(Debug, Default)]
pub struct SortedList {
    head: Option<Box<ListNode>>,
    len: usize,
    dirty: DirtyTracker,
}

impl Clone for SortedList {
    fn clone(&self) -> Self {
        // Iterative deep copy: a derived clone would recurse once per node
        // and overflow the stack on long lists.
        let mut out = SortedList::new();
        let mut tail = &mut out.head;
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            *tail = Some(Box::new(ListNode {
                key: node.key,
                next: None,
            }));
            tail = &mut tail.as_mut().unwrap().next;
            cur = node.next.as_deref();
        }
        out.len = self.len;
        out.dirty = self.dirty.clone();
        out
    }
}

impl SortedList {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn touch_node(&mut self, key: u64) {
        self.dirty.touch(key.wrapping_mul(NODE_BYTES), NODE_BYTES);
    }

    #[inline]
    fn touch_link(&mut self, prev_key: Option<u64>) {
        match prev_key {
            Some(k) => self.touch_node(k),
            None => self.dirty.touch(HEADER_BASE, 16),
        }
    }

    /// Inserts `key`; returns false if it was already present.
    pub fn insert(&mut self, key: u64) -> bool {
        let mut prev_key = None;
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                Some(node) if node.key < key => {
                    prev_key = Some(node.key);
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
                Some(node) if node.key == key => return false,
                _ => break,
            }
        }
        let next = cursor.take();
        *cursor = Some(Box::new(ListNode { key, next }));
        self.len += 1;
        self.touch_node(key);
        self.touch_link(prev_key);
        self.dirty.touch(HEADER_BASE, 16);
        true
    }

    /// Removes `key`; returns false if it was absent.
    pub fn remove(&mut self, key: u64) -> bool {
        let mut prev_key = None;
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                Some(node) if node.key < key => {
                    prev_key = Some(node.key);
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
                Some(node) if node.key == key => {
                    let next = node.next.take();
                    *cursor = next;
                    self.len -= 1;
                    self.touch_link(prev_key);
                    self.dirty.touch(HEADER_BASE, 16);
                    return true;
                }
                _ => return false,
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if node.key == key {
                return true;
            }
            if node.key > key {
                return false;
            }
            cur = node.next.as_deref();
        }
        false
    }

    /// Keys in ascending order (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push(node.key);
            cur = node.next.as_deref();
        }
        out
    }
}

impl Drop for SortedList {
    fn drop(&mut self) {
        // Iterative drop: the derived recursive drop overflows the stack on
        // long lists.
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

impl SequentialObject for SortedList {
    type Op = SetOp;
    type Resp = SetResp;

    fn apply(&mut self, op: &SetOp) -> SetResp {
        match *op {
            SetOp::Insert(k) => SetResp::Bool(self.insert(k)),
            SetOp::Remove(k) => SetResp::Bool(self.remove(k)),
            SetOp::Contains(k) => SetResp::Bool(self.contains(k)),
            SetOp::Len => SetResp::Len(self.len()),
        }
    }

    fn apply_readonly(&self, op: &SetOp) -> SetResp {
        match *op {
            SetOp::Contains(k) => SetResp::Bool(self.contains(k)),
            SetOp::Len => SetResp::Len(self.len()),
            _ => panic!("apply_readonly called with update operation {op:?}"),
        }
    }

    fn is_read_only(op: &SetOp) -> bool {
        matches!(op, SetOp::Contains(_) | SetOp::Len)
    }

    fn approx_bytes(&self) -> u64 {
        (self.len * std::mem::size_of::<ListNode>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_bytes_constant_matches_layout() {
        assert_eq!(NODE_BYTES, std::mem::size_of::<ListNode>() as u64);
    }

    #[test]
    fn dirty_bytes_track_splice_sites() {
        let mut l = SortedList::new();
        for k in 0..1_000u64 {
            l.insert(k * 100); // spread keys across distinct lines
        }
        l.clear_dirty();
        l.insert(50_000_000); // tail insert: node + predecessor + header
        let dirty = l.dirty_bytes_since_checkpoint();
        assert!(dirty > 0 && dirty <= 4 * 64, "insert dirtied {dirty} bytes");
        assert!(l.approx_bytes() > dirty);
    }

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut l = SortedList::new();
        assert!(l.insert(5));
        assert!(l.insert(1));
        assert!(l.insert(9));
        assert!(!l.insert(5), "duplicate insert must fail");
        assert_eq!(l.to_vec(), vec![1, 5, 9]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_head_middle_tail_and_missing() {
        let mut l = SortedList::new();
        for k in [1u64, 2, 3, 4, 5] {
            l.insert(k);
        }
        assert!(l.remove(1)); // head
        assert!(l.remove(3)); // middle
        assert!(l.remove(5)); // tail
        assert!(!l.remove(9)); // missing
        assert_eq!(l.to_vec(), vec![2, 4]);
    }

    #[test]
    fn contains_uses_sorted_early_exit() {
        let mut l = SortedList::new();
        l.insert(10);
        l.insert(20);
        assert!(l.contains(10));
        assert!(!l.contains(15));
        assert!(!l.contains(25));
    }

    #[test]
    fn clone_object_is_deep_and_ordered() {
        let mut a = SortedList::new();
        for k in [3u64, 1, 2] {
            a.insert(k);
        }
        let mut b = a.clone_object();
        b.remove(2);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 3]);
    }

    #[test]
    fn long_list_drops_without_stack_overflow() {
        let mut l = SortedList::new();
        // Descending inserts hit the head in O(1), so building a very long
        // list is cheap; dropping it must not recurse.
        for k in (0..200_000u64).rev() {
            l.insert(k);
        }
        assert_eq!(l.len(), 200_000);
        drop(l);
    }

    #[test]
    fn dispatch_and_read_only() {
        let mut l = SortedList::new();
        assert_eq!(l.apply(&SetOp::Insert(7)), SetResp::Bool(true));
        assert_eq!(l.apply(&SetOp::Contains(7)), SetResp::Bool(true));
        assert_eq!(l.apply(&SetOp::Len), SetResp::Len(1));
        assert_eq!(l.apply(&SetOp::Remove(7)), SetResp::Bool(true));
        assert!(SortedList::is_read_only(&SetOp::Contains(0)));
        assert!(!SortedList::is_read_only(&SetOp::Insert(0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Differential test against BTreeSet; also checks sorted order.
        #[test]
        fn matches_btreeset(ops in proptest::collection::vec(
            (0u8..3, 0u64..32), 1..200))
        {
            let mut ours = SortedList::new();
            let mut reference = std::collections::BTreeSet::new();
            for (kind, k) in ops {
                match kind {
                    0 => prop_assert_eq!(ours.insert(k), reference.insert(k)),
                    1 => prop_assert_eq!(ours.remove(k), reference.remove(&k)),
                    _ => prop_assert_eq!(ours.contains(k), reference.contains(&k)),
                }
            }
            let expect: Vec<u64> = reference.into_iter().collect();
            prop_assert_eq!(ours.to_vec(), expect);
        }
    }
}
