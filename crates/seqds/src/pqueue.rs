//! A binary max-heap priority queue (paper §6 "Priority Queue": the
//! sequential implementation there is C++ `std::priority_queue`, a binary
//! max-heap over a vector — reimplemented here rather than wrapping
//! `BinaryHeap` so the heap property is test-visible).

use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: heap slot `i` lives at `i × 8`;
/// the length counter has its own header line. Every swap along a sift path
/// touches both slots, so an op's dirty set is its sift path — O(log n)
/// lines, not O(n).
const HEADER_BASE: u64 = 1 << 50;

/// Operations on [`PriorityQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqOp {
    /// Insert a value.
    Enqueue(u64),
    /// Remove and return the maximum.
    Dequeue,
    /// Read the maximum without removing it (read-only).
    Peek,
    /// Current size (read-only).
    Len,
}

/// Responses for [`PqOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqResp {
    /// Enqueue acknowledgement.
    Ok,
    /// Dequeued or peeked value (None when empty).
    Value(Option<u64>),
    /// Element count.
    Len(usize),
}

/// A binary max-heap of `u64`.
#[derive(Debug, Clone, Default)]
pub struct PriorityQueue {
    heap: Vec<u64>,
    dirty: DirtyTracker,
}

impl PriorityQueue {
    /// Creates an empty priority queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    fn touch_slot(&mut self, i: usize) {
        self.dirty.touch(i as u64 * 8, 8);
    }

    /// Inserts `v`.
    pub fn enqueue(&mut self, v: u64) {
        self.heap.push(v);
        self.touch_slot(self.heap.len() - 1);
        self.dirty.touch(HEADER_BASE, 8);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the maximum element.
    pub fn dequeue(&mut self) -> Option<u64> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.touch_slot(0);
        self.dirty.touch(HEADER_BASE, 8);
        let top = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        top
    }

    /// Returns the maximum element without removing it.
    pub fn peek(&self) -> Option<u64> {
        self.heap.first().copied()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] <= self.heap[parent] {
                break;
            }
            self.heap.swap(i, parent);
            self.touch_slot(i);
            self.touch_slot(parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n && self.heap[l] > self.heap[largest] {
                largest = l;
            }
            if r < n && self.heap[r] > self.heap[largest] {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            self.touch_slot(i);
            self.touch_slot(largest);
            i = largest;
        }
    }

    /// Panics if the max-heap property is violated anywhere.
    pub fn check_invariants(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.heap[parent] >= self.heap[i],
                "heap property violated at index {i}"
            );
        }
    }
}

impl SequentialObject for PriorityQueue {
    type Op = PqOp;
    type Resp = PqResp;

    fn apply(&mut self, op: &PqOp) -> PqResp {
        match *op {
            PqOp::Enqueue(v) => {
                self.enqueue(v);
                PqResp::Ok
            }
            PqOp::Dequeue => PqResp::Value(self.dequeue()),
            PqOp::Peek => PqResp::Value(self.peek()),
            PqOp::Len => PqResp::Len(self.len()),
        }
    }

    fn apply_readonly(&self, op: &PqOp) -> PqResp {
        match *op {
            PqOp::Peek => PqResp::Value(self.peek()),
            PqOp::Len => PqResp::Len(self.len()),
            _ => panic!("apply_readonly called with update operation {op:?}"),
        }
    }

    fn is_read_only(op: &PqOp) -> bool {
        matches!(op, PqOp::Peek | PqOp::Len)
    }

    fn clone_object(&self) -> Self {
        self.clone()
    }

    fn approx_bytes(&self) -> u64 {
        (self.heap.len() * std::mem::size_of::<u64>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_bytes_bounded_by_sift_path() {
        let mut pq = PriorityQueue::new();
        for v in 0..4_096u64 {
            pq.enqueue(v);
        }
        pq.clear_dirty();
        pq.enqueue(u64::MAX); // worst case: sifts to the root, log₂ n swaps
        let dirty = pq.dirty_bytes_since_checkpoint();
        assert!(dirty > 0);
        // ≤ (path length + appended slot + header) lines.
        assert!(dirty <= 15 * 64, "sift dirtied {dirty} bytes");
        assert!(pq.approx_bytes() > dirty);
    }

    #[test]
    fn dequeues_in_descending_order() {
        let mut pq = PriorityQueue::new();
        for v in [5u64, 1, 9, 3, 7, 7, 2] {
            pq.enqueue(v);
            pq.check_invariants();
        }
        let mut out = Vec::new();
        while let Some(v) = pq.dequeue() {
            out.push(v);
            pq.check_invariants();
        }
        assert_eq!(out, vec![9, 7, 7, 5, 3, 2, 1]);
        assert_eq!(pq.dequeue(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut pq = PriorityQueue::new();
        pq.enqueue(4);
        pq.enqueue(6);
        assert_eq!(pq.peek(), Some(6));
        assert_eq!(pq.len(), 2);
        assert_eq!(pq.dequeue(), Some(6));
        assert_eq!(pq.peek(), Some(4));
    }

    #[test]
    fn sequential_object_dispatch() {
        let mut pq = PriorityQueue::new();
        assert_eq!(pq.apply(&PqOp::Enqueue(3)), PqResp::Ok);
        assert_eq!(pq.apply(&PqOp::Peek), PqResp::Value(Some(3)));
        assert_eq!(pq.apply(&PqOp::Len), PqResp::Len(1));
        assert_eq!(pq.apply(&PqOp::Dequeue), PqResp::Value(Some(3)));
        assert!(PriorityQueue::is_read_only(&PqOp::Peek));
        assert!(!PriorityQueue::is_read_only(&PqOp::Enqueue(0)));
        assert!(!PriorityQueue::is_read_only(&PqOp::Dequeue));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Differential test against std::collections::BinaryHeap.
        #[test]
        fn matches_binary_heap(ops in proptest::collection::vec(
            (any::<bool>(), any::<u64>()), 1..300))
        {
            let mut ours = PriorityQueue::new();
            let mut reference = std::collections::BinaryHeap::new();
            for (enq, v) in ops {
                if enq {
                    ours.enqueue(v);
                    reference.push(v);
                } else {
                    prop_assert_eq!(ours.dequeue(), reference.pop());
                }
                prop_assert_eq!(ours.peek(), reference.peek().copied());
                prop_assert_eq!(ours.len(), reference.len());
            }
            ours.check_invariants();
        }
    }
}
