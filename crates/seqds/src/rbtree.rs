//! A red-black tree map (paper §6 "Red-black Tree").
//!
//! Classic CLRS red-black tree with parent pointers and a black sentinel,
//! stored in an index arena (`Vec<Node>` with `u32` links and a free list).
//! The arena representation keeps `clone_object` a plain memcpy-style clone
//! and keeps "pointers" (indexes) valid across recovery without any
//! relocation concerns.
//!
//! Reuses [`MapOp`]/[`MapResp`] from the hashmap module so the benchmark
//! harness can swap map implementations under the same workload.

use crate::hashmap::{MapOp, MapResp};
use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: arena node `i` lives at
/// `i × size_of::<Node>()`; root/len/free-list head share a header line.
/// Every structural mutation flows through [`RbTree::nm`], so the dirty set
/// of one op is exactly the nodes its search path rewrote — O(log n) lines.
/// Growing the arena reallocates (moves) every node and saturates the
/// tracker.
const HEADER_BASE: u64 = 1 << 50;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    value: u64,
    left: u32,
    right: u32,
    parent: u32,
    color: Color,
}

/// Index of the sentinel "nil" node (always black; its fields are scratch).
const NIL: u32 = 0;

/// A red-black tree map from `u64` to `u64`.
#[derive(Debug, Clone)]
pub struct RbTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    dirty: DirtyTracker,
}

impl RbTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RbTree {
            nodes: vec![Node {
                key: 0,
                value: 0,
                left: NIL,
                right: NIL,
                parent: NIL,
                color: Color::Black,
            }],
            free: Vec::new(),
            root: NIL,
            len: 0,
            dirty: DirtyTracker::new(),
        }
    }

    const NODE_BYTES: u64 = std::mem::size_of::<Node>() as u64;

    #[inline]
    fn touch_node(&mut self, i: u32) {
        self.dirty
            .touch(i as u64 * Self::NODE_BYTES, Self::NODE_BYTES);
    }

    #[inline]
    fn n(&self, i: u32) -> &Node {
        &self.nodes[i as usize]
    }

    #[inline]
    fn nm(&mut self, i: u32) -> &mut Node {
        self.touch_node(i);
        &mut self.nodes[i as usize]
    }

    fn alloc(&mut self, key: u64, value: u64) -> u32 {
        let node = Node {
            key,
            value,
            left: NIL,
            right: NIL,
            parent: NIL,
            color: Color::Red,
        };
        if let Some(i) = self.free.pop() {
            self.touch_node(i);
            self.nodes[i as usize] = node;
            i
        } else {
            if self.nodes.len() == self.nodes.capacity() {
                // The arena reallocates: every node moves.
                self.dirty.touch_all();
            }
            self.nodes.push(node);
            let i = (self.nodes.len() - 1) as u32;
            self.touch_node(i);
            i
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut x = self.root;
        while x != NIL {
            let node = self.n(x);
            x = match key.cmp(&node.key) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => return Some(node.value),
            };
        }
        None
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    fn left_rotate(&mut self, x: u32) {
        let y = self.n(x).right;
        let yl = self.n(y).left;
        self.nm(x).right = yl;
        if yl != NIL {
            self.nm(yl).parent = x;
        }
        let xp = self.n(x).parent;
        self.nm(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.n(xp).left == x {
            self.nm(xp).left = y;
        } else {
            self.nm(xp).right = y;
        }
        self.nm(y).left = x;
        self.nm(x).parent = y;
    }

    fn right_rotate(&mut self, x: u32) {
        let y = self.n(x).left;
        let yr = self.n(y).right;
        self.nm(x).left = yr;
        if yr != NIL {
            self.nm(yr).parent = x;
        }
        let xp = self.n(x).parent;
        self.nm(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.n(xp).right == x {
            self.nm(xp).right = y;
        } else {
            self.nm(xp).left = y;
        }
        self.nm(y).right = x;
        self.nm(x).parent = y;
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let mut y = NIL;
        let mut x = self.root;
        while x != NIL {
            y = x;
            let node = self.n(x);
            x = match key.cmp(&node.key) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => {
                    return Some(std::mem::replace(&mut self.nm(x).value, value));
                }
            };
        }
        let z = self.alloc(key, value);
        self.dirty.touch(HEADER_BASE, 24); // root / len / free head
        self.nm(z).parent = y;
        if y == NIL {
            self.root = z;
        } else if key < self.n(y).key {
            self.nm(y).left = z;
        } else {
            self.nm(y).right = z;
        }
        self.len += 1;
        self.insert_fixup(z);
        None
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.n(self.n(z).parent).color == Color::Red {
            let zp = self.n(z).parent;
            let zpp = self.n(zp).parent;
            if zp == self.n(zpp).left {
                let uncle = self.n(zpp).right;
                if self.n(uncle).color == Color::Red {
                    self.nm(zp).color = Color::Black;
                    self.nm(uncle).color = Color::Black;
                    self.nm(zpp).color = Color::Red;
                    z = zpp;
                } else {
                    if z == self.n(zp).right {
                        z = zp;
                        self.left_rotate(z);
                    }
                    let zp = self.n(z).parent;
                    let zpp = self.n(zp).parent;
                    self.nm(zp).color = Color::Black;
                    self.nm(zpp).color = Color::Red;
                    self.right_rotate(zpp);
                }
            } else {
                let uncle = self.n(zpp).left;
                if self.n(uncle).color == Color::Red {
                    self.nm(zp).color = Color::Black;
                    self.nm(uncle).color = Color::Black;
                    self.nm(zpp).color = Color::Red;
                    z = zpp;
                } else {
                    if z == self.n(zp).left {
                        z = zp;
                        self.right_rotate(z);
                    }
                    let zp = self.n(z).parent;
                    let zpp = self.n(zp).parent;
                    self.nm(zp).color = Color::Black;
                    self.nm(zpp).color = Color::Red;
                    self.left_rotate(zpp);
                }
            }
        }
        let r = self.root;
        self.nm(r).color = Color::Black;
    }

    fn minimum(&self, mut x: u32) -> u32 {
        while self.n(x).left != NIL {
            x = self.n(x).left;
        }
        x
    }

    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.n(u).parent;
        if up == NIL {
            self.root = v;
        } else if u == self.n(up).left {
            self.nm(up).left = v;
        } else {
            self.nm(up).right = v;
        }
        // CLRS: assign unconditionally — the sentinel's parent is scratch
        // space that delete_fixup relies on.
        self.nm(v).parent = up;
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mut z = self.root;
        while z != NIL {
            let node = self.n(z);
            z = match key.cmp(&node.key) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => break,
            };
        }
        if z == NIL {
            return None;
        }
        self.dirty.touch(HEADER_BASE, 24); // root / len / free head
        let removed = self.n(z).value;

        let mut y = z;
        let mut y_color = self.n(y).color;
        let x;
        if self.n(z).left == NIL {
            x = self.n(z).right;
            self.transplant(z, x);
        } else if self.n(z).right == NIL {
            x = self.n(z).left;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.n(z).right);
            y_color = self.n(y).color;
            x = self.n(y).right;
            if self.n(y).parent == z {
                self.nm(x).parent = y;
            } else {
                self.transplant(y, x);
                let zr = self.n(z).right;
                self.nm(y).right = zr;
                self.nm(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.n(z).left;
            self.nm(y).left = zl;
            self.nm(zl).parent = y;
            self.nm(y).color = self.n(z).color;
        }
        if y_color == Color::Black {
            self.delete_fixup(x);
        }
        self.free.push(z);
        self.len -= 1;
        Some(removed)
    }

    fn delete_fixup(&mut self, mut x: u32) {
        while x != self.root && self.n(x).color == Color::Black {
            let xp = self.n(x).parent;
            if x == self.n(xp).left {
                let mut w = self.n(xp).right;
                if self.n(w).color == Color::Red {
                    self.nm(w).color = Color::Black;
                    self.nm(xp).color = Color::Red;
                    self.left_rotate(xp);
                    w = self.n(xp).right;
                }
                if self.n(self.n(w).left).color == Color::Black
                    && self.n(self.n(w).right).color == Color::Black
                {
                    self.nm(w).color = Color::Red;
                    x = xp;
                } else {
                    if self.n(self.n(w).right).color == Color::Black {
                        let wl = self.n(w).left;
                        self.nm(wl).color = Color::Black;
                        self.nm(w).color = Color::Red;
                        self.right_rotate(w);
                        w = self.n(xp).right;
                    }
                    self.nm(w).color = self.n(xp).color;
                    self.nm(xp).color = Color::Black;
                    let wr = self.n(w).right;
                    self.nm(wr).color = Color::Black;
                    self.left_rotate(xp);
                    x = self.root;
                }
            } else {
                let mut w = self.n(xp).left;
                if self.n(w).color == Color::Red {
                    self.nm(w).color = Color::Black;
                    self.nm(xp).color = Color::Red;
                    self.right_rotate(xp);
                    w = self.n(xp).left;
                }
                if self.n(self.n(w).right).color == Color::Black
                    && self.n(self.n(w).left).color == Color::Black
                {
                    self.nm(w).color = Color::Red;
                    x = xp;
                } else {
                    if self.n(self.n(w).left).color == Color::Black {
                        let wr = self.n(w).right;
                        self.nm(wr).color = Color::Black;
                        self.nm(w).color = Color::Red;
                        self.left_rotate(w);
                        w = self.n(xp).left;
                    }
                    self.nm(w).color = self.n(xp).color;
                    self.nm(xp).color = Color::Black;
                    let wl = self.n(w).left;
                    self.nm(wl).color = Color::Black;
                    self.right_rotate(xp);
                    x = self.root;
                }
            }
        }
        self.nm(x).color = Color::Black;
    }

    /// Checks every red-black invariant; returns the tree's black height.
    ///
    /// Exposed (not `cfg(test)`) so integration tests can validate replica
    /// states after crash recovery.
    ///
    /// # Panics
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self) -> usize {
        assert_eq!(self.n(NIL).color, Color::Black, "sentinel must stay black");
        if self.root == NIL {
            assert_eq!(self.len, 0);
            return 0;
        }
        assert_eq!(self.n(self.root).color, Color::Black, "root must be black");
        let (bh, count) = self.check_subtree(self.root, None, None);
        assert_eq!(count, self.len, "len does not match node count");
        bh
    }

    fn check_subtree(&self, x: u32, lo: Option<u64>, hi: Option<u64>) -> (usize, usize) {
        if x == NIL {
            return (1, 0);
        }
        let node = self.n(x);
        if let Some(lo) = lo {
            assert!(node.key > lo, "BST order violated");
        }
        if let Some(hi) = hi {
            assert!(node.key < hi, "BST order violated");
        }
        if node.color == Color::Red {
            assert_eq!(
                self.n(node.left).color,
                Color::Black,
                "red node with red left child"
            );
            assert_eq!(
                self.n(node.right).color,
                Color::Black,
                "red node with red right child"
            );
        }
        if node.left != NIL {
            assert_eq!(self.n(node.left).parent, x, "broken parent link");
        }
        if node.right != NIL {
            assert_eq!(self.n(node.right).parent, x, "broken parent link");
        }
        let (lbh, lc) = self.check_subtree(node.left, lo, Some(node.key));
        let (rbh, rc) = self.check_subtree(node.right, Some(node.key), hi);
        assert_eq!(lbh, rbh, "black-height mismatch");
        let own = if node.color == Color::Black { 1 } else { 0 };
        (lbh + own, lc + rc + 1)
    }
}

impl Default for RbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SequentialObject for RbTree {
    type Op = MapOp;
    type Resp = MapResp;

    fn apply(&mut self, op: &MapOp) -> MapResp {
        match *op {
            MapOp::Insert { key, value } => MapResp::Value(self.insert(key, value)),
            MapOp::Remove { key } => MapResp::Value(self.remove(key)),
            MapOp::Get { key } => MapResp::Value(self.get(key)),
            MapOp::Contains { key } => MapResp::Bool(self.contains(key)),
            MapOp::Len => MapResp::Len(self.len()),
        }
    }

    fn apply_readonly(&self, op: &MapOp) -> MapResp {
        match *op {
            MapOp::Get { key } => MapResp::Value(self.get(key)),
            MapOp::Contains { key } => MapResp::Bool(self.contains(key)),
            MapOp::Len => MapResp::Len(self.len()),
            _ => panic!("apply_readonly called with update operation {op:?}"),
        }
    }

    fn is_read_only(op: &MapOp) -> bool {
        matches!(op, MapOp::Get { .. } | MapOp::Contains { .. } | MapOp::Len)
    }

    fn clone_object(&self) -> Self {
        self.clone()
    }

    fn approx_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<Node>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_bytes_bounded_by_search_path() {
        let mut t = RbTree::new();
        for k in 0..8_192u64 {
            t.insert(k, k);
        }
        t.clear_dirty();
        t.insert(3_000, 999); // overwrite: exactly the found node
        let one = t.dirty_bytes_since_checkpoint();
        assert!(one > 0 && one <= 2 * 64, "overwrite dirtied {one} bytes");
        t.remove(4_000); // structural: fixup path, still O(log n)
        let dirty = t.dirty_bytes_since_checkpoint();
        assert!(dirty <= 64 * 64, "remove dirtied {dirty} bytes");
        assert!(t.approx_bytes() > 10 * dirty);
        t.check_invariants();
    }

    #[test]
    fn basic_insert_get_remove() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(8, 80), None);
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(5), Some(55));
        assert_eq!(t.get(9), None);
        assert_eq!(t.remove(3), Some(30));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn ascending_and_descending_insertions_stay_balanced() {
        let mut t = RbTree::new();
        for k in 0..1024u64 {
            t.insert(k, k);
            if k % 128 == 0 {
                t.check_invariants();
            }
        }
        let bh = t.check_invariants();
        // Black height of a 1024-node RB tree is at most ~log2(n)+1.
        assert!(bh <= 11, "black height {bh} too large");

        let mut t = RbTree::new();
        for k in (0..1024u64).rev() {
            t.insert(k, k);
        }
        t.check_invariants();
        for k in 0..1024u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn removal_in_every_order_preserves_invariants() {
        for stride in [1u64, 3, 7, 11] {
            let mut t = RbTree::new();
            for k in 0..200u64 {
                t.insert(k, k);
            }
            let mut k = 0u64;
            for _ in 0..200 {
                assert!(t.remove(k % 200).is_some() || t.get(k % 200).is_none());
                t.check_invariants();
                k += stride;
            }
        }
    }

    #[test]
    fn node_slots_are_reused_after_free() {
        let mut t = RbTree::new();
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let cap = t.nodes.len();
        for k in 0..100u64 {
            t.remove(k);
        }
        for k in 100..200u64 {
            t.insert(k, k);
        }
        assert_eq!(t.nodes.len(), cap, "free list not reused");
        t.check_invariants();
    }

    #[test]
    fn clone_object_is_deep() {
        let mut a = RbTree::new();
        a.insert(1, 1);
        let mut b = a.clone_object();
        b.insert(2, 2);
        b.remove(1);
        assert!(a.contains(1));
        assert!(!a.contains(2));
        a.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn sequential_object_read_only_classification() {
        assert!(RbTree::is_read_only(&MapOp::Contains { key: 1 }));
        assert!(!RbTree::is_read_only(&MapOp::Remove { key: 1 }));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Differential test against BTreeMap with invariant checks.
        #[test]
        fn matches_btreemap(ops in proptest::collection::vec(
            (0u8..3, 0u64..48, any::<u64>()), 1..300))
        {
            let mut ours = RbTree::new();
            let mut reference = std::collections::BTreeMap::new();
            for (kind, k, v) in ops {
                match kind {
                    0 => prop_assert_eq!(ours.insert(k, v), reference.insert(k, v)),
                    1 => prop_assert_eq!(ours.remove(k), reference.remove(&k)),
                    _ => prop_assert_eq!(ours.get(k), reference.get(&k).copied()),
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
            ours.check_invariants();
        }
    }
}
