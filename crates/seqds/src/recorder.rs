//! The crash-test instrument: an object whose state *is* its history.
//!
//! [`Recorder`] applies update operations by appending their unique ids to a
//! vector. After a simulated crash, the recovered recorder's state is
//! literally the sequence of update operations that survived — so the
//! correctness conditions become direct assertions:
//!
//! * **buffered durable linearizability** ⇔ the recovered sequence is a
//!   *prefix* of the linearization order (the log order);
//! * **durable linearizability** ⇔ that prefix additionally contains every
//!   operation that completed before the crash;
//! * the **`ε + β − 1` loss bound** ⇔ `completed − recovered ≤ ε + β − 1`.

use crate::{DirtyTracker, SequentialObject};

/// Logical layout for dirty-line tracking: history slot `i` lives at
/// `i × 8`; the length counter has its own header line. Append-only, so an
/// interval's dirty set is the lines holding the ids recorded in it.
const HEADER_BASE: u64 = 1 << 50;

/// Operations on [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderOp {
    /// Append a unique operation id (update).
    Record(u64),
    /// Read the number of recorded ops (read-only).
    Count,
    /// Read the last recorded id (read-only).
    Last,
}

/// Responses for [`RecorderOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderResp {
    /// The index at which the id was recorded (0-based).
    RecordedAt(u64),
    /// Number of recorded operations.
    Count(u64),
    /// Last recorded id, if any.
    Last(Option<u64>),
}

/// An append-only history object.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    history: Vec<u64>,
    dirty: DirtyTracker,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded history, in application order.
    pub fn history(&self) -> &[u64] {
        &self.history
    }

    /// Number of recorded operations.
    pub fn count(&self) -> u64 {
        self.history.len() as u64
    }
}

impl SequentialObject for Recorder {
    type Op = RecorderOp;
    type Resp = RecorderResp;

    fn apply(&mut self, op: &RecorderOp) -> RecorderResp {
        match *op {
            RecorderOp::Record(id) => {
                self.dirty.touch(self.history.len() as u64 * 8, 8);
                self.dirty.touch(HEADER_BASE, 8);
                self.history.push(id);
                RecorderResp::RecordedAt(self.history.len() as u64 - 1)
            }
            RecorderOp::Count => RecorderResp::Count(self.count()),
            RecorderOp::Last => RecorderResp::Last(self.history.last().copied()),
        }
    }

    fn apply_readonly(&self, op: &RecorderOp) -> RecorderResp {
        match *op {
            RecorderOp::Count => RecorderResp::Count(self.count()),
            RecorderOp::Last => RecorderResp::Last(self.history.last().copied()),
            RecorderOp::Record(_) => {
                panic!("apply_readonly called with update operation {op:?}")
            }
        }
    }

    fn is_read_only(op: &RecorderOp) -> bool {
        matches!(op, RecorderOp::Count | RecorderOp::Last)
    }

    fn clone_object(&self) -> Self {
        self.clone()
    }

    fn approx_bytes(&self) -> u64 {
        (self.history.len() * std::mem::size_of::<u64>()) as u64
    }

    fn dirty_bytes_since_checkpoint(&self) -> u64 {
        self.dirty.dirty_bytes(self.approx_bytes())
    }

    fn dirty_lines_since_checkpoint(&self) -> Option<Vec<u64>> {
        self.dirty.lines()
    }

    fn clear_dirty(&mut self) {
        self.dirty.reset();
    }
}

/// Asserts that `recovered` is a prefix of `reference`, returning its
/// length. Used by crash tests on recorder histories.
///
/// # Panics
/// Panics (with a diagnostic) if `recovered` is not a prefix.
pub fn assert_prefix(recovered: &[u64], reference: &[u64]) -> usize {
    assert!(
        recovered.len() <= reference.len(),
        "recovered history ({}) longer than reference ({})",
        recovered.len(),
        reference.len()
    );
    for (i, (r, e)) in recovered.iter().zip(reference).enumerate() {
        assert_eq!(
            r, e,
            "recovered history diverges from linearization order at index {i}"
        );
    }
    recovered.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_reports_indexes() {
        let mut r = Recorder::new();
        assert_eq!(
            r.apply(&RecorderOp::Record(10)),
            RecorderResp::RecordedAt(0)
        );
        assert_eq!(
            r.apply(&RecorderOp::Record(20)),
            RecorderResp::RecordedAt(1)
        );
        assert_eq!(r.history(), &[10, 20]);
        assert_eq!(r.apply(&RecorderOp::Count), RecorderResp::Count(2));
        assert_eq!(r.apply(&RecorderOp::Last), RecorderResp::Last(Some(20)));
    }

    #[test]
    fn read_only_classification() {
        assert!(Recorder::is_read_only(&RecorderOp::Count));
        assert!(Recorder::is_read_only(&RecorderOp::Last));
        assert!(!Recorder::is_read_only(&RecorderOp::Record(0)));
    }

    #[test]
    fn prefix_assertion_accepts_prefixes() {
        assert_eq!(assert_prefix(&[], &[1, 2, 3]), 0);
        assert_eq!(assert_prefix(&[1, 2], &[1, 2, 3]), 2);
        assert_eq!(assert_prefix(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn prefix_assertion_rejects_divergence() {
        assert_prefix(&[1, 9], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "longer than reference")]
    fn prefix_assertion_rejects_overlong() {
        assert_prefix(&[1, 2, 3, 4], &[1, 2, 3]);
    }
}
